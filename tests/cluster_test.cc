// Sharded Bullet cluster: consistent-hash ring invariants, the versioned
// placement map (codec, Bullet-shard installs, directory-server home),
// client-side routing with wrong_shard self-correction, and live rebalance
// (shard add/remove, racing creates, reconcile, drain).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "cluster/placement.h"
#include "cluster/rebalance.h"
#include "cluster/ring.h"
#include "cluster/routing_client.h"
#include "dir/client.h"
#include "dir/server.h"
#include "tests/test_util.h"

#ifndef BULLET_TOOL_PATH
#error "BULLET_TOOL_PATH must be defined by the build"
#endif

namespace bullet {
namespace {

using ::bullet::testing::BulletHarness;
using ::bullet::testing::payload;
using ::bullet::testing::status_of;

std::vector<std::uint32_t> ids_1_to(std::uint32_t n) {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 1; i <= n; ++i) ids.push_back(i);
  return ids;
}

// --- ring invariants ----------------------------------------------------

TEST(RingTest, DeterministicAcrossInstances) {
  const cluster::Ring a(ids_1_to(7));
  const cluster::Ring b(ids_1_to(7));
  for (std::uint32_t object = 1; object <= 4096; ++object) {
    ASSERT_EQ(a.owner_of(object), b.owner_of(object));
  }
}

TEST(RingTest, RoughlyBalanced) {
  const std::uint32_t kShards = 8;
  const std::uint32_t kObjects = 10000;
  const cluster::Ring ring(ids_1_to(kShards));
  std::map<std::uint32_t, std::uint32_t> owned;
  for (std::uint32_t object = 1; object <= kObjects; ++object) {
    ++owned[ring.owner_of(object)];
  }
  EXPECT_EQ(kShards, owned.size());
  // Fair share is 12.5%; vnode smoothing keeps every shard within a loose
  // band around it.
  for (const auto& [shard, count] : owned) {
    EXPECT_GT(count, kObjects / kShards / 3) << "shard " << shard;
    EXPECT_LT(count, kObjects / kShards * 3) << "shard " << shard;
  }
}

TEST(RingTest, AddingOneShardRemapsBoundedMinimalDelta) {
  const std::uint32_t kObjects = 10000;
  const cluster::Ring before(ids_1_to(4));
  const cluster::Ring after(ids_1_to(5));
  std::uint32_t moved = 0;
  for (std::uint32_t object = 1; object <= kObjects; ++object) {
    const std::uint32_t was = before.owner_of(object);
    const std::uint32_t now = after.owner_of(object);
    if (was == now) continue;
    ++moved;
    // Consistent hashing: a new shard only *steals* keys; no key moves
    // between two surviving shards.
    EXPECT_EQ(5u, now) << "object " << object << " moved " << was << "->"
                       << now;
  }
  // Expected fraction is 1/5 of the key space; allow ~1.5x slack for vnode
  // placement variance.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kObjects * 3 / 10);
}

TEST(RingTest, VnodeCountChangesPlacement) {
  // vnodes is part of the placement function, which is why the map carries
  // it: evaluating the same shard set at different vnode counts is a
  // different ring.
  const cluster::Ring a(ids_1_to(4), 64);
  const cluster::Ring b(ids_1_to(4), 32);
  std::uint32_t differs = 0;
  for (std::uint32_t object = 1; object <= 1000; ++object) {
    if (a.owner_of(object) != b.owner_of(object)) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

// Cross-process determinism: the tool computes owners in a separate
// process; its output must match the in-process ring bit for bit.
TEST(RingTest, DeterministicAcrossProcesses) {
  const std::string capture =
      testing::unique_temp_path(".ring");
  const std::string command = std::string(BULLET_TOOL_PATH) +
                              " ring --shards 4 --sample 32 > " + capture;
  ASSERT_EQ(0, WEXITSTATUS(std::system(command.c_str())));
  std::ifstream in(capture);
  const cluster::Ring ring(ids_1_to(4));
  std::uint32_t object = 0, owner = 0, lines = 0;
  while (in >> object >> owner) {
    ++lines;
    EXPECT_EQ(ring.owner_of(object), owner) << "object " << object;
  }
  EXPECT_EQ(32u, lines);
  std::remove(capture.c_str());
}

// --- placement map codec ------------------------------------------------

cluster::PlacementMap sample_map() {
  cluster::PlacementMap map;
  map.epoch = 7;
  map.vnodes = 32;
  map.shards.push_back({1, {9001}});
  map.shards.push_back({2, {9002, 9003}});
  map.shards.push_back({5, {9005}});
  return map;
}

TEST(PlacementMapTest, EncodeDecodeRoundtrip) {
  const cluster::PlacementMap map = sample_map();
  const Bytes wire = map.encode_bytes();
  auto decoded = cluster::PlacementMap::decode_bytes(ByteSpan(wire));
  ASSERT_OK(status_of(decoded));
  EXPECT_EQ(map.epoch, decoded.value().epoch);
  EXPECT_EQ(map.vnodes, decoded.value().vnodes);
  ASSERT_EQ(map.shards.size(), decoded.value().shards.size());
  for (std::size_t i = 0; i < map.shards.size(); ++i) {
    EXPECT_EQ(map.shards[i].id, decoded.value().shards[i].id);
    EXPECT_EQ(map.shards[i].endpoints, decoded.value().shards[i].endpoints);
  }
  EXPECT_TRUE(decoded.value().has_shard(5));
  EXPECT_FALSE(decoded.value().has_shard(3));
}

TEST(PlacementMapTest, RejectsTrailingBytes) {
  Bytes wire = sample_map().encode_bytes();
  wire.push_back(0);
  EXPECT_FALSE(cluster::PlacementMap::decode_bytes(ByteSpan(wire)).ok());
}

TEST(PlacementMapTest, RejectsDuplicateShardIds) {
  cluster::PlacementMap map = sample_map();
  map.shards.push_back({2, {9999}});
  const Bytes wire = map.encode_bytes();
  EXPECT_FALSE(cluster::PlacementMap::decode_bytes(ByteSpan(wire)).ok());
}

TEST(PlacementMapTest, RejectsZeroVnodes) {
  cluster::PlacementMap map = sample_map();
  map.vnodes = 0;
  const Bytes wire = map.encode_bytes();
  EXPECT_FALSE(cluster::PlacementMap::decode_bytes(ByteSpan(wire)).ok());
}

// --- shard-side map handling --------------------------------------------

cluster::PlacementMap two_shard_map(std::uint64_t epoch) {
  cluster::PlacementMap map;
  map.epoch = epoch;
  map.shards.push_back({1, {0}});
  map.shards.push_back({2, {1}});
  return map;
}

TEST(ShardMapTest, InstallEpochDiscipline) {
  BulletHarness h;
  BulletServer& server = h.server();
  EXPECT_EQ(0u, server.placement().epoch);

  ASSERT_OK(server.install_placement(1, two_shard_map(2)));
  EXPECT_EQ(2u, server.placement().epoch);
  EXPECT_EQ(1u, server.shard_id());

  // Idempotent at the same epoch and identity...
  ASSERT_OK(server.install_placement(1, two_shard_map(2)));
  // ...but a conflicting identity or an older epoch is refused.
  EXPECT_CODE(conflict, server.install_placement(2, two_shard_map(2)));
  EXPECT_CODE(conflict, server.install_placement(1, two_shard_map(1)));
  // A map that does not list this shard cannot be installed.
  cluster::PlacementMap absent = two_shard_map(3);
  absent.shards.erase(absent.shards.begin());
  EXPECT_CODE(bad_argument, server.install_placement(1, absent));

  EXPECT_EQ(2u, server.stats().shard_epoch);
  EXPECT_EQ(1u, server.stats().shard_id);
  // Only installs that took effect count; the idempotent re-install above
  // was a no-op.
  EXPECT_EQ(1u, server.stats().shard_map_installs);
}

TEST(ShardMapTest, WrongShardOnlyForAbsentForeignObjects) {
  BulletHarness h;
  rpc::LoopbackTransport net;
  ASSERT_OK(net.register_service(&h.server()));
  BulletClient client(&net, h.server().super_capability());

  // Files created before sharding: owned by "whoever holds them".
  std::vector<Capability> caps;
  for (int i = 0; i < 12; ++i) {
    auto cap = client.create(payload(512, 40 + i), 1);
    ASSERT_OK(status_of(cap));
    caps.push_back(cap.value());
  }

  const cluster::PlacementMap map = two_shard_map(1);
  ASSERT_OK(h.server().install_placement(1, map));
  const cluster::Ring ring = map.ring();

  // Held objects are served regardless of ring ownership: reads from the
  // old owner must stay valid mid-rebalance.
  bool saw_foreign_held = false;
  for (const Capability& cap : caps) {
    ASSERT_OK(status_of(client.read(cap)));
    if (ring.owner_of(cap.object) != 1) saw_foreign_held = true;
  }
  EXPECT_TRUE(saw_foreign_held);
  EXPECT_EQ(0u, h.server().stats().wrong_shard_replies);

  // An *absent* object the ring places elsewhere is a routing miss.
  std::uint32_t foreign_free = 0, local_free = 0;
  const std::uint32_t slots = h.options().inode_slots;
  for (std::uint32_t object = 1; object < slots; ++object) {
    bool held = false;
    for (const Capability& cap : caps) held = held || cap.object == object;
    if (held) continue;
    if (ring.owner_of(object) != 1 && foreign_free == 0) foreign_free = object;
    if (ring.owner_of(object) == 1 && local_free == 0) local_free = object;
  }
  ASSERT_NE(0u, foreign_free);
  ASSERT_NE(0u, local_free);

  Capability probe = caps.front();
  probe.object = foreign_free;
  EXPECT_CODE(wrong_shard, status_of(client.read(probe)));
  probe.object = local_free;
  EXPECT_CODE(no_such_object, status_of(client.read(probe)));
  EXPECT_EQ(1u, h.server().stats().wrong_shard_replies);
}

TEST(ShardMapTest, CreateAllocatesOnlySelfOwnedSlots) {
  BulletHarness h;
  rpc::LoopbackTransport net;
  ASSERT_OK(net.register_service(&h.server()));
  BulletClient client(&net, h.server().super_capability());

  const cluster::PlacementMap map = two_shard_map(1);
  ASSERT_OK(h.server().install_placement(1, map));
  const cluster::Ring ring = map.ring();

  for (int i = 0; i < 24; ++i) {
    auto cap = client.create(payload(256, 60 + i), 1);
    ASSERT_OK(status_of(cap));
    EXPECT_EQ(1u, ring.owner_of(cap.value().object))
        << "allocated foreign slot " << cap.value().object;
  }
}

TEST(ShardMapTest, WireInstallAndFetch) {
  BulletHarness h;
  rpc::LoopbackTransport net;
  ASSERT_OK(net.register_service(&h.server()));

  const cluster::PlacementMap map = two_shard_map(9);
  Writer install(1 + 4 + 4 + 64);
  install.u8(wire::kShardMapInstall);
  install.u32(2);
  install.blob(map.encode_bytes());
  rpc::Request request;
  request.target = h.server().super_capability();
  request.opcode = wire::kShardMap;
  request.body = std::move(install).take();
  auto reply = net.call(request);
  ASSERT_OK(status_of(reply));
  ASSERT_EQ(ErrorCode::ok, reply.value().status);
  EXPECT_EQ(2u, h.server().shard_id());

  Writer fetch(1);
  fetch.u8(wire::kShardMapFetch);
  request.body = std::move(fetch).take();
  reply = net.call(request);
  ASSERT_OK(status_of(reply));
  ASSERT_EQ(ErrorCode::ok, reply.value().status);
  Reader r(ByteSpan(reply.value().body));
  auto blob = r.blob();
  ASSERT_OK(status_of(blob));
  auto fetched = cluster::PlacementMap::decode_bytes(blob.value());
  ASSERT_OK(status_of(fetched));
  EXPECT_EQ(9u, fetched.value().epoch);

  // Without the admin right the opcode is refused.
  request.target = h.server().super_capability(rights::kRead);
  Writer fetch2(1);
  fetch2.u8(wire::kShardMapFetch);
  request.body = std::move(fetch2).take();
  reply = net.call(request);
  ASSERT_OK(status_of(reply));
  EXPECT_EQ(ErrorCode::permission, reply.value().status);
}

// --- directory-server map home ------------------------------------------

class DirMapTest : public ::testing::Test {
 protected:
  DirMapTest() {
    EXPECT_OK(net_.register_service(&h_.server()));
    BulletClient storage(&net_, h_.server().super_capability());
    auto server = dir::DirServer::start(storage, dir::DirConfig());
    EXPECT_TRUE(server.ok());
    dir_server_ = std::move(server).value();
    EXPECT_OK(net_.register_service(dir_server_.get()));
    client_ = std::make_unique<dir::DirClient>(&net_,
                                               dir_server_->super_capability());
  }

  BulletHarness h_;
  rpc::LoopbackTransport net_;
  std::unique_ptr<dir::DirServer> dir_server_;
  std::unique_ptr<dir::DirClient> client_;
};

TEST_F(DirMapTest, InstallFetchEpochDiscipline) {
  auto epoch = client_->map_epoch();
  ASSERT_OK(status_of(epoch));
  EXPECT_EQ(0u, epoch.value());

  const Bytes v2 = two_shard_map(2).encode_bytes();
  EXPECT_CODE(bad_argument, client_->install_map(0, ByteSpan(v2)));
  ASSERT_OK(client_->install_map(2, ByteSpan(v2)));

  auto fetched = client_->fetch_map();
  ASSERT_OK(status_of(fetched));
  EXPECT_EQ(2u, fetched.value().epoch);
  EXPECT_EQ(v2, fetched.value().map);

  // Idempotent re-install; conflict on regression or a different map at
  // the same epoch.
  ASSERT_OK(client_->install_map(2, ByteSpan(v2)));
  EXPECT_CODE(conflict, client_->install_map(1, ByteSpan(v2)));
  const Bytes other = two_shard_map(9).encode_bytes();
  EXPECT_CODE(conflict, client_->install_map(2, ByteSpan(other)));

  const Bytes v3 = two_shard_map(3).encode_bytes();
  ASSERT_OK(client_->install_map(3, ByteSpan(v3)));
  epoch = client_->map_epoch();
  ASSERT_OK(status_of(epoch));
  EXPECT_EQ(3u, epoch.value());
}

TEST_F(DirMapTest, MapSurvivesCheckpointRestore) {
  const Bytes v5 = two_shard_map(5).encode_bytes();
  ASSERT_OK(client_->install_map(5, ByteSpan(v5)));
  auto boot = client_->checkpoint();
  ASSERT_OK(status_of(boot));

  dir::DirConfig config;
  config.restore_from = boot.value();
  BulletClient storage(&net_, h_.server().super_capability());
  auto revived = dir::DirServer::start(storage, config);
  ASSERT_OK(status_of(revived));
  EXPECT_EQ(5u, revived.value()->map_epoch());
  EXPECT_EQ(v5, revived.value()->map_bytes());
}

TEST_F(DirMapTest, PreClusterCheckpointStillRestores) {
  // A checkpoint taken before any map was installed has no map tail; it
  // must restore cleanly with epoch 0 (append-only snapshot discipline).
  auto boot = client_->checkpoint();
  ASSERT_OK(status_of(boot));
  dir::DirConfig config;
  config.restore_from = boot.value();
  BulletClient storage(&net_, h_.server().super_capability());
  auto revived = dir::DirServer::start(storage, config);
  ASSERT_OK(status_of(revived));
  EXPECT_EQ(0u, revived.value()->map_epoch());
}

// --- cluster harness ----------------------------------------------------

BulletHarness::Options solo_disk() {
  BulletHarness::Options options;
  options.replicas = 1;
  return options;
}

// N Bullet shards sharing private port and secret (the cluster identity),
// each on its own LoopbackTransport (they answer on the same public port),
// plus a directory server for the map. The directory server's own metadata
// lives on a *separate* Bullet instance, never a cluster shard: the dir
// reaches its storage over a fixed direct connection, so its files must not
// be subject to rebalance. Endpoint tokens in ShardInfo are indexes into
// the transport array.
class ClusterHarness {
 public:
  explicit ClusterHarness(std::size_t shard_count)
      : dir_storage_(solo_disk()) {
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<BulletHarness>(solo_disk()));
      BulletConfig config;
      config.cache_bytes = 1 << 20;
      config.rng_seed = 0xC10C + 0x1111 * i;
      shards_.back()->reboot(config);
      nets_.push_back(std::make_unique<rpc::LoopbackTransport>());
      EXPECT_OK(nets_.back()->register_service(&shards_.back()->server()));
    }
    EXPECT_OK(dir_storage_net_.register_service(&dir_storage_.server()));
    BulletClient storage(&dir_storage_net_,
                         dir_storage_.server().super_capability());
    auto server = dir::DirServer::start(storage, dir::DirConfig());
    EXPECT_TRUE(server.ok());
    dir_server_ = std::move(server).value();
    EXPECT_OK(dir_net_.register_service(dir_server_.get()));
    dir_client_ = std::make_unique<dir::DirClient>(
        &dir_net_, dir_server_->super_capability());
  }

  Capability super() { return shards_[0]->server().super_capability(); }

  cluster::RoutingClient::Resolver resolver() {
    return [this](const cluster::ShardInfo& info) -> rpc::Transport* {
      if (info.endpoints.empty()) return nullptr;
      const std::uint64_t index = info.endpoints.front();
      if (index >= nets_.size()) return nullptr;
      return nets_[index].get();
    };
  }

  // Shard ids 1..n, endpoint token = transport index (id - 1).
  std::vector<cluster::ShardInfo> shard_infos(std::size_t n) {
    std::vector<cluster::ShardInfo> infos;
    for (std::size_t i = 0; i < n; ++i) {
      infos.push_back({static_cast<std::uint32_t>(i + 1), {i}});
    }
    return infos;
  }

  cluster::Rebalancer rebalancer() {
    return cluster::Rebalancer(dir_client_.get(), super(), resolver());
  }

  void bootstrap(std::size_t n) {
    cluster::PlacementMap initial;
    initial.shards = shard_infos(n);
    ASSERT_OK(rebalancer().bootstrap(std::move(initial)));
  }

  cluster::RoutingClient routing_client() {
    return cluster::RoutingClient(dir_client_.get(), super(), resolver());
  }

  BulletServer& shard(std::uint32_t id) {
    return shards_[id - 1]->server();
  }
  std::size_t shard_count() const { return shards_.size(); }
  dir::DirClient& dir() { return *dir_client_; }

  std::uint64_t total_live_files(std::size_t n) {
    std::uint64_t total = 0;
    for (std::size_t i = 1; i <= n; ++i) {
      total += shard(static_cast<std::uint32_t>(i)).live_files();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<BulletHarness>> shards_;
  std::vector<std::unique_ptr<rpc::LoopbackTransport>> nets_;
  BulletHarness dir_storage_;
  rpc::LoopbackTransport dir_storage_net_;
  rpc::LoopbackTransport dir_net_;
  std::unique_ptr<dir::DirServer> dir_server_;
  std::unique_ptr<dir::DirClient> dir_client_;
};

// --- routed operations --------------------------------------------------

TEST(RoutingTest, CreateReadEraseAcrossShards) {
  ClusterHarness cluster(3);
  cluster.bootstrap(3);
  cluster::RoutingClient client = cluster.routing_client();
  client.enable_message_ids(0x500);

  std::vector<std::pair<Capability, Bytes>> files;
  for (int i = 0; i < 48; ++i) {
    const Bytes data = payload(200 + 37 * i, 700 + i);
    auto cap = client.create(ByteSpan(data), 1);
    ASSERT_OK(status_of(cap));
    files.push_back({cap.value(), data});
  }
  // One map fetch served every operation (the hot path never touches the
  // directory server).
  EXPECT_EQ(1u, client.map_fetches());
  EXPECT_EQ(0u, client.wrong_shard_retries());

  // Round-robin creates spread the data across every shard.
  for (std::uint32_t id = 1; id <= 3; ++id) {
    EXPECT_GT(cluster.shard(id).live_files(), 0u) << "shard " << id;
  }
  EXPECT_EQ(files.size(), cluster.total_live_files(3));

  // Every file reads back through routing, and sits where the ring says.
  for (const auto& [cap, data] : files) {
    auto back = client.read_whole(cap);
    ASSERT_OK(status_of(back));
    EXPECT_EQ(data, back.value());
    auto owner = client.shard_for(cap.object);
    ASSERT_OK(status_of(owner));
    ASSERT_OK(status_of(cluster.shard(owner.value()).read(cap)));
  }

  // Erase half; erased objects are gone, the rest remain.
  for (std::size_t i = 0; i < files.size(); i += 2) {
    ASSERT_OK(client.erase(files[i].first));
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    auto back = client.read(files[i].first);
    if (i % 2 == 0) {
      EXPECT_FALSE(back.ok());
    } else {
      ASSERT_OK(status_of(back));
    }
  }
  EXPECT_EQ(files.size() / 2, cluster.total_live_files(3));
}

TEST(RoutingTest, StaleMapResolvesInOneRefetch) {
  ClusterHarness cluster(3);
  cluster.bootstrap(2);
  cluster::RoutingClient stale = cluster.routing_client();

  std::vector<std::pair<Capability, Bytes>> files;
  for (int i = 0; i < 40; ++i) {
    const Bytes data = payload(300, 900 + i);
    auto cap = stale.create(ByteSpan(data), 1);
    ASSERT_OK(status_of(cap));
    files.push_back({cap.value(), data});
  }
  EXPECT_EQ(1u, stale.epoch());

  // Grow the cluster behind the client's back.
  auto report = cluster.rebalancer().run(cluster.shard_infos(3));
  ASSERT_OK(status_of(report));
  EXPECT_GT(report.value().planned, 0u);

  // Find a file the rebalance moved; the stale client's first read of it
  // answers wrong_shard, and exactly one map refetch self-corrects.
  const cluster::Ring before(ids_1_to(2));
  const cluster::Ring after(ids_1_to(3));
  const Capability* moved = nullptr;
  const Bytes* moved_data = nullptr;
  for (const auto& [cap, data] : files) {
    if (before.owner_of(cap.object) != after.owner_of(cap.object)) {
      moved = &cap;
      moved_data = &data;
      break;
    }
  }
  ASSERT_NE(nullptr, moved);

  const std::uint64_t fetches_before = stale.map_fetches();
  auto back = stale.read(*moved);
  ASSERT_OK(status_of(back));
  EXPECT_EQ(*moved_data, back.value());
  EXPECT_EQ(1u, stale.wrong_shard_retries());
  EXPECT_EQ(fetches_before + 1, stale.map_fetches());
  EXPECT_EQ(2u, stale.epoch());

  // Everything else reads correctly through the refreshed map too.
  for (const auto& [cap, data] : files) {
    auto again = stale.read_whole(cap);
    ASSERT_OK(status_of(again));
    EXPECT_EQ(data, again.value());
  }
}

// --- rebalance ----------------------------------------------------------

TEST(RebalanceTest, AddShardMovesDeltaAndDrains) {
  ClusterHarness cluster(3);
  cluster.bootstrap(2);
  cluster::RoutingClient client = cluster.routing_client();

  std::vector<std::pair<Capability, Bytes>> files;
  for (int i = 0; i < 120; ++i) {
    const Bytes data = payload(128 + 11 * i, 1100 + i);
    auto cap = client.create(ByteSpan(data), 1);
    ASSERT_OK(status_of(cap));
    files.push_back({cap.value(), data});
  }

  cluster::Rebalancer rebalancer = cluster.rebalancer();
  auto report = rebalancer.run(cluster.shard_infos(3));
  ASSERT_OK(status_of(report));
  // Only the ring delta moves: about a third of the objects, never most
  // of them.
  EXPECT_GT(report.value().planned, 0u);
  EXPECT_LT(report.value().planned, files.size() * 11 / 20);
  EXPECT_EQ(report.value().planned, report.value().copied);
  EXPECT_EQ(0u, report.value().conflicts);
  // Drain leaves exactly one copy of each file cluster-wide.
  EXPECT_EQ(files.size(), cluster.total_live_files(3));
  EXPECT_GT(cluster.shard(3).live_files(), 0u);

  // A fresh client (and the old one) read everything back intact.
  cluster::RoutingClient fresh = cluster.routing_client();
  for (const auto& [cap, data] : files) {
    auto a = fresh.read_whole(cap);
    ASSERT_OK(status_of(a));
    EXPECT_EQ(data, a.value());
    auto b = client.read_whole(cap);
    ASSERT_OK(status_of(b));
    EXPECT_EQ(data, b.value());
  }
  EXPECT_EQ(0u, fresh.fallback_reads());

  // Placement converged: planning the same target again finds no moves.
  auto again = rebalancer.plan(cluster.shard_infos(3));
  ASSERT_OK(status_of(again));
  EXPECT_EQ(0u, again.value().moves.size());
}

TEST(RebalanceTest, RemoveShardDrainsIt) {
  ClusterHarness cluster(3);
  cluster.bootstrap(3);
  cluster::RoutingClient client = cluster.routing_client();

  std::vector<std::pair<Capability, Bytes>> files;
  for (int i = 0; i < 90; ++i) {
    const Bytes data = payload(256, 1300 + i);
    auto cap = client.create(ByteSpan(data), 1);
    ASSERT_OK(status_of(cap));
    files.push_back({cap.value(), data});
  }
  ASSERT_GT(cluster.shard(3).live_files(), 0u);

  // Shrink to shards {1, 2}: shard 3's whole population moves off it.
  auto report = cluster.rebalancer().run(cluster.shard_infos(2));
  ASSERT_OK(status_of(report));
  EXPECT_EQ(0u, cluster.shard(3).live_files());
  EXPECT_EQ(files.size(), cluster.total_live_files(2));

  cluster::RoutingClient fresh = cluster.routing_client();
  for (const auto& [cap, data] : files) {
    auto back = fresh.read_whole(cap);
    ASSERT_OK(status_of(back));
    EXPECT_EQ(data, back.value());
  }
}

TEST(RebalanceTest, CreatesRacingTheCopyAreNeverLost) {
  ClusterHarness cluster(3);
  cluster.bootstrap(2);
  cluster::RoutingClient client = cluster.routing_client();

  std::vector<std::pair<Capability, Bytes>> files;
  for (int i = 0; i < 60; ++i) {
    const Bytes data = payload(192, 1500 + i);
    auto cap = client.create(ByteSpan(data), 1);
    ASSERT_OK(status_of(cap));
    files.push_back({cap.value(), data});
  }

  // Drive the phases by hand, injecting racing creates mid-copy: these
  // land on slots the (still-installed) old map owns, some of which the
  // new ring assigns elsewhere — the strays the reconcile pass exists for.
  cluster::Rebalancer rebalancer = cluster.rebalancer();
  auto plan = rebalancer.plan(cluster.shard_infos(3));
  ASSERT_OK(status_of(plan));
  ASSERT_OK(status_of(rebalancer.copy_step(plan.value(), 5)));

  std::vector<std::pair<Capability, Bytes>> racing;
  for (int i = 0; i < 24; ++i) {
    const Bytes data = payload(160, 1700 + i);
    auto cap = client.create(ByteSpan(data), 1);
    ASSERT_OK(status_of(cap));
    racing.push_back({cap.value(), data});
  }
  const cluster::Ring before(ids_1_to(2));
  const cluster::Ring after(ids_1_to(3));
  std::size_t expected_strays = 0;
  for (const auto& [cap, data] : racing) {
    if (before.owner_of(cap.object) != after.owner_of(cap.object)) {
      ++expected_strays;
    }
  }
  ASSERT_GT(expected_strays, 0u) << "racing creates produced no strays; "
                                    "grow the racing batch";

  while (!plan.value().copy_done()) {
    ASSERT_OK(status_of(rebalancer.copy_step(plan.value(), 8)));
  }
  ASSERT_OK(rebalancer.flip(plan.value()));

  // Post-flip, pre-reconcile: the strays still live at their old owners.
  // A client that lived through the flip finds them via its previous-map
  // fallback; a client born after the flip finds them by probing. No
  // acked object is unreadable at any point.
  for (const auto& [cap, data] : racing) {
    auto back = client.read_whole(cap);
    ASSERT_OK(status_of(back));
    EXPECT_EQ(data, back.value());
  }
  cluster::RoutingClient fresh = cluster.routing_client();
  for (const auto& [cap, data] : racing) {
    auto back = fresh.read_whole(cap);
    ASSERT_OK(status_of(back));
    EXPECT_EQ(data, back.value());
  }
  EXPECT_GT(fresh.fallback_reads(), 0u);

  auto reconciled = rebalancer.reconcile(plan.value());
  ASSERT_OK(status_of(reconciled));
  EXPECT_GE(reconciled.value(), expected_strays);
  auto drained = rebalancer.drain(plan.value());
  ASSERT_OK(status_of(drained));

  // Converged: every file exactly once, everything readable without
  // fallbacks, and a re-plan finds nothing to move.
  EXPECT_EQ(files.size() + racing.size(), cluster.total_live_files(3));
  cluster::RoutingClient after_client = cluster.routing_client();
  for (const auto& [cap, data] : files) {
    auto back = after_client.read_whole(cap);
    ASSERT_OK(status_of(back));
    EXPECT_EQ(data, back.value());
  }
  for (const auto& [cap, data] : racing) {
    auto back = after_client.read_whole(cap);
    ASSERT_OK(status_of(back));
    EXPECT_EQ(data, back.value());
  }
  EXPECT_EQ(0u, after_client.fallback_reads());
  auto replan = rebalancer.plan(cluster.shard_infos(3));
  ASSERT_OK(status_of(replan));
  EXPECT_EQ(0u, replan.value().moves.size());
}

TEST(RebalanceTest, EpochInvariantDuringFlip) {
  // client epoch <= dir epoch <= every shard's epoch, at every phase
  // boundary of a rebalance.
  ClusterHarness cluster(3);
  cluster.bootstrap(2);
  cluster::RoutingClient client = cluster.routing_client();
  ASSERT_OK(client.refresh_map());

  auto check = [&](std::uint64_t client_epoch) {
    auto dir_epoch = cluster.dir().map_epoch();
    ASSERT_OK(status_of(dir_epoch));
    EXPECT_LE(client_epoch, dir_epoch.value());
    const std::uint64_t installed_shards =
        cluster.dir().map_epoch().value() == 1 ? 2 : 3;
    for (std::uint32_t id = 1; id <= installed_shards; ++id) {
      EXPECT_LE(dir_epoch.value(), cluster.shard(id).placement().epoch);
    }
  };

  check(client.epoch());
  cluster::Rebalancer rebalancer = cluster.rebalancer();
  auto plan = rebalancer.plan(cluster.shard_infos(3));
  ASSERT_OK(status_of(plan));
  check(client.epoch());
  ASSERT_OK(status_of(
      rebalancer.copy_step(plan.value(), static_cast<std::size_t>(-1))));
  check(client.epoch());
  ASSERT_OK(rebalancer.flip(plan.value()));
  check(client.epoch());
  ASSERT_OK(client.refresh_map());
  EXPECT_EQ(2u, client.epoch());
  check(client.epoch());
}

}  // namespace
}  // namespace bullet
