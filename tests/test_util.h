// Shared fixtures and helpers for the test suite.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "common/crc.h"
#include "common/rng.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "rpc/transport.h"

namespace bullet::testing {

// Pretty assertion helpers for Status / Result.
#define ASSERT_OK(expr)                                           \
  do {                                                            \
    const auto& _st = (expr);                                     \
    ASSERT_TRUE(_st.ok()) << "status: " << ::bullet::to_string(_st.code()); \
  } while (0)

#define EXPECT_OK(expr)                                           \
  do {                                                            \
    const auto& _st = (expr);                                     \
    EXPECT_TRUE(_st.ok()) << "status: " << ::bullet::to_string(_st.code()); \
  } while (0)

#define EXPECT_CODE(code_, expr)                  \
  do {                                            \
    const auto& _st = (expr);                     \
    EXPECT_FALSE(_st.ok());                       \
    EXPECT_EQ(::bullet::ErrorCode::code_, _st.code()) \
        << ::bullet::to_string(_st.code());       \
  } while (0)

// A ready-to-use Bullet deployment on two mirrored in-memory disks.
class BulletHarness {
 public:
  struct Options {
    std::uint64_t block_size = 512;
    std::uint64_t disk_blocks = 4096;     // 2 MB per replica by default
    std::uint32_t inode_slots = 256;
    std::uint64_t cache_bytes = 1 << 20;  // 1 MB
    int replicas = 2;
  };

  BulletHarness() : BulletHarness(Options{}) {}

  explicit BulletHarness(Options options) : options_(options) {
    for (int i = 0; i < options.replicas; ++i) {
      disks_.push_back(std::make_unique<MemDisk>(options.block_size,
                                                 options.disk_blocks));
    }
    auto st = BulletServer::format(*disks_.front(), options.inode_slots);
    EXPECT_TRUE(st.ok()) << st.to_string();
    // Replicas start identical.
    for (int i = 1; i < options.replicas; ++i) {
      auto st2 = disks_[static_cast<std::size_t>(i)]->restore(
          disks_.front()->snapshot());
      EXPECT_TRUE(st2.ok()) << st2.to_string();
    }
    reboot();
  }

  // Tear the server down and boot a fresh instance from the same disks
  // (state must come back from the disk images). The no-argument form
  // applies the harness options (cache size); the explicit form uses the
  // given config verbatim.
  void reboot() {
    BulletConfig config;
    config.cache_bytes = options_.cache_bytes;
    reboot(config);
  }

  void reboot(BulletConfig config) {
    server_.reset();
    mirror_.reset();
    std::vector<BlockDevice*> replicas;
    for (auto& d : disks_) replicas.push_back(d.get());
    auto mirror = MirroredDisk::create(std::move(replicas));
    ASSERT_TRUE(mirror.ok()) << mirror.error().to_string();
    mirror_ = std::make_unique<MirroredDisk>(std::move(mirror).value());
    auto server = BulletServer::start(mirror_.get(), config);
    ASSERT_TRUE(server.ok()) << server.error().to_string();
    server_ = std::move(server).value();
  }

  BulletServer& server() { return *server_; }
  MirroredDisk& mirror() { return *mirror_; }
  MemDisk& disk(int i) { return *disks_[static_cast<std::size_t>(i)]; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::vector<std::unique_ptr<MemDisk>> disks_;
  std::unique_ptr<MirroredDisk> mirror_;
  std::unique_ptr<BulletServer> server_;
};

// Deterministic payload of `n` bytes derived from `seed`.
inline Bytes payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return rng.next_bytes(n);
}

// A collision-free temp path ending in `suffix`. ctest runs every TEST as
// its own process, possibly many in parallel, so fixed file names under
// TempDir() collide across cases and across concurrent runs of the same
// binary; this derives the name from the running test, the pid, and a
// per-process counter.
inline std::string unique_temp_path(const std::string& suffix) {
  static std::atomic<unsigned> counter{0};
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string test = info != nullptr
                         ? std::string(info->test_suite_name()) + "-" +
                               std::string(info->name())
                         : std::string("standalone");
  for (char& c : test) {
    if (c == '/' || c == '\\') c = '_';
  }
  return ::testing::TempDir() + "bullet-" + test + "-" +
         std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + suffix;
}

// Collapse a Result<T> into a Status for EXPECT_CODE.
template <typename T>
Status status_of(const Result<T>& result) {
  return result.ok() ? Status::success() : Status(result.error());
}
inline Status status_of(const Status& status) { return status; }

}  // namespace bullet::testing
