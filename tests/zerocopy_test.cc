// Regression tests for the zero-copy read/create hot path: borrowed-payload
// replies, the bytes_copied / scratch_allocs / evict_scans cost counters,
// and wire compatibility of the gathered encoding.
#include <gtest/gtest.h>

#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "common/crc.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;

// A cache-hit READ must not stage payload bytes through any temporary
// buffer: the reply borrows straight from the cache arena.
TEST(ZeroCopyTest, CacheHitReadCopiesNothing) {
  BulletHarness h;
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(&h.server()));
  BulletClient client(&transport, h.server().super_capability());

  const Bytes data = payload(64 << 10, 7);
  auto cap = client.create(data, 2);
  ASSERT_TRUE(cap.ok());

  for (int i = 0; i < 8; ++i) {
    auto got = client.read(cap.value());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(crc32c(data), crc32c(got.value()));
  }

  auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(8u, stats.value().cache_hits);
  EXPECT_EQ(0u, stats.value().cache_misses);
  // Create ingests straight into the arena and read replies borrow from
  // it, so the server staged zero payload bytes end to end.
  EXPECT_EQ(0u, stats.value().bytes_copied);
  EXPECT_EQ(0u, stats.value().scratch_allocs);
}

// The raw reply for READ carries the 4-byte length prefix as owned bytes
// and the file itself as a borrowed segment referencing the cache arena.
TEST(ZeroCopyTest, ReadReplyBorrowsFromCacheArena) {
  BulletHarness h;
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(&h.server()));
  BulletClient client(&transport, h.server().super_capability());

  const Bytes data = payload(3000, 11);
  auto cap = client.create(data, 2);
  ASSERT_TRUE(cap.ok());

  rpc::Request req;
  req.target = cap.value();
  req.opcode = wire::kRead;
  rpc::Reply reply = h.server().handle(req);
  ASSERT_EQ(ErrorCode::ok, reply.status);
  EXPECT_EQ(4u, reply.body.size());  // owned part is just the length prefix
  ASSERT_EQ(1u, reply.segments.size());
  ASSERT_EQ(data.size(), reply.segments[0].size());
  EXPECT_TRUE(equal(data, reply.segments[0]));
  EXPECT_EQ(2u + 4u + 4u + data.size(), reply.wire_size());
}

// Gathering a borrowed reply onto the wire produces bytes identical to the
// old flat (fully owned) encoding, so UDP peers and golden files are
// unaffected by the representation change.
TEST(ZeroCopyTest, BorrowedEncodeMatchesFlatEncode) {
  const Bytes data = payload(777, 3);
  Writer flat(4 + data.size());
  flat.u32(static_cast<std::uint32_t>(data.size()));
  flat.bytes(data);
  const rpc::Reply owned = rpc::Reply::success(std::move(flat).take());

  Writer header(4);
  header.u32(static_cast<std::uint32_t>(data.size()));
  const rpc::Reply borrowed =
      rpc::Reply::success_borrowed(std::move(header).take(), data);

  EXPECT_EQ(owned.payload_size(), borrowed.payload_size());
  EXPECT_EQ(owned.wire_size(), borrowed.wire_size());
  const Bytes wire_owned = owned.encode();
  const Bytes wire_borrowed = borrowed.encode();
  EXPECT_EQ(wire_owned.size(), borrowed.wire_size());
  EXPECT_TRUE(equal(wire_owned, wire_borrowed));

  // And the decoded form is a flat reply again.
  auto decoded = rpc::Reply::decode(wire_borrowed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(ErrorCode::ok, decoded.value().status);
  EXPECT_TRUE(decoded.value().segments.empty());
  EXPECT_EQ(owned.body.size(), decoded.value().body.size());
  EXPECT_TRUE(equal(owned.body, decoded.value().body));
}

// take_payload() materializes body + segments in order; with no segments it
// must move the body, not copy it.
TEST(ZeroCopyTest, TakePayloadConcatenatesSegments) {
  const Bytes part1 = payload(10, 1);
  const Bytes part2 = payload(20, 2);
  rpc::Reply reply;
  reply.body = part1;
  reply.segments.push_back(part2);
  Bytes all = std::move(reply).take_payload();
  ASSERT_EQ(30u, all.size());
  EXPECT_TRUE(equal(part1, ByteSpan(all).first(10)));
  EXPECT_TRUE(equal(part2, ByteSpan(all).subspan(10)));

  rpc::Reply flat;
  flat.body = part1;
  const std::uint8_t* before = flat.body.data();
  Bytes moved = std::move(flat).take_payload();
  EXPECT_EQ(before, moved.data());  // moved, not reallocated
}

// Eviction must examine exactly one rnode per victim (intrusive LRU list),
// not scan the whole table.
TEST(ZeroCopyTest, EvictionExaminesOneRnodePerVictim) {
  BulletHarness::Options options;
  options.cache_bytes = 64 << 10;  // small cache to force eviction churn
  BulletHarness h(options);
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(&h.server()));
  BulletClient client(&transport, h.server().super_capability());

  std::vector<Capability> caps;
  for (std::uint64_t i = 0; i < 40; ++i) {
    auto cap = client.create(payload(8 << 10, i + 1), 2);
    ASSERT_TRUE(cap.ok());
    caps.push_back(cap.value());
  }
  // Re-read a few old files to force miss -> insert -> evict cycles.
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.read(caps[i]).ok());
  }

  auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_GT(stats.value().cache_evictions, 0u);
  EXPECT_EQ(stats.value().cache_evictions, stats.value().evict_scans);
  // Cache-miss reads also stay copy-free: disk blocks land directly in the
  // arena and the reply borrows them.
  EXPECT_EQ(0u, stats.value().bytes_copied);
}

// READ-RANGE replies borrow a sub-span of the cached file.
TEST(ZeroCopyTest, ReadRangeBorrowsSubSpan) {
  BulletHarness h;
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(&h.server()));
  BulletClient client(&transport, h.server().super_capability());

  const Bytes data = payload(5000, 21);
  auto cap = client.create(data, 2);
  ASSERT_TRUE(cap.ok());

  rpc::Request req;
  req.target = cap.value();
  req.opcode = wire::kReadRange;
  Writer w(8);
  w.u32(1000);
  w.u32(2000);
  req.body = std::move(w).take();
  rpc::Reply reply = h.server().handle(req);
  ASSERT_EQ(ErrorCode::ok, reply.status);
  ASSERT_EQ(1u, reply.segments.size());
  ASSERT_EQ(2000u, reply.segments[0].size());
  EXPECT_TRUE(equal(ByteSpan(data).subspan(1000, 2000), reply.segments[0]));

  auto got = client.read_range(cap.value(), 1000, 2000);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(equal(ByteSpan(data).subspan(1000, 2000), got.value()));
}

}  // namespace
}  // namespace bullet
