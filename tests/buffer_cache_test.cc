// Unit tests for the baseline server's block buffer cache.
#include <gtest/gtest.h>

#include "nfsbase/buffer_cache.h"
#include "tests/test_util.h"

namespace bullet::nfsbase {
namespace {

using ::bullet::testing::payload;

class BufferCacheTest : public ::testing::Test {
 protected:
  BufferCacheTest() : disk_(512, 64), cache_(&disk_, 4 * 512) {}  // 4 buffers
  MemDisk disk_;
  BufferCache cache_;
};

TEST_F(BufferCacheTest, ReadLoadsFromDiskOnceThenHits) {
  ASSERT_OK(disk_.write(3, payload(512, 1)));
  const auto reads0 = disk_.reads();
  auto first = cache_.read(3);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(equal(payload(512, 1), first.value()));
  EXPECT_EQ(reads0 + 1, disk_.reads());
  ASSERT_TRUE(cache_.read(3).ok());
  EXPECT_EQ(reads0 + 1, disk_.reads());  // hit
  EXPECT_EQ(1u, cache_.stats().hits);
  EXPECT_EQ(1u, cache_.stats().misses);
}

TEST_F(BufferCacheTest, WriteThroughHitsDiskImmediately) {
  const auto writes0 = disk_.writes();
  ASSERT_OK(cache_.write_through(5, payload(512, 2)));
  EXPECT_EQ(writes0 + 1, disk_.writes());
  // And the cached copy serves reads without another disk access.
  const auto reads0 = disk_.reads();
  auto data = cache_.read(5);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(equal(payload(512, 2), data.value()));
  EXPECT_EQ(reads0, disk_.reads());
}

TEST_F(BufferCacheTest, WriteBackDefersUntilFlush) {
  const auto writes0 = disk_.writes();
  ASSERT_OK(cache_.write_back(7, payload(512, 3)));
  EXPECT_EQ(writes0, disk_.writes());  // nothing on disk yet
  Bytes raw(512);
  ASSERT_OK(disk_.read(7, raw));
  EXPECT_FALSE(equal(payload(512, 3), raw));
  ASSERT_OK(cache_.flush());
  ASSERT_OK(disk_.read(7, raw));
  EXPECT_TRUE(equal(payload(512, 3), raw));
  EXPECT_EQ(1u, cache_.stats().writebacks);
}

TEST_F(BufferCacheTest, EvictionWritesDirtyVictims) {
  // Fill the 4-buffer cache with dirty blocks, then touch a 5th.
  for (std::uint64_t b = 0; b < 4; ++b) {
    ASSERT_OK(cache_.write_back(b, payload(512, b)));
  }
  const auto writes0 = disk_.writes();
  ASSERT_TRUE(cache_.read(10).ok());  // evicts the LRU dirty buffer
  EXPECT_EQ(writes0 + 1, disk_.writes());
  EXPECT_EQ(1u, cache_.stats().evictions);
  // The evicted block's data made it to disk.
  Bytes raw(512);
  ASSERT_OK(disk_.read(0, raw));
  EXPECT_TRUE(equal(payload(512, 0), raw));
}

TEST_F(BufferCacheTest, LruOrderRespected) {
  for (std::uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(cache_.read(b).ok());
  }
  // Touch 0 so 1 becomes LRU; loading 20 must evict 1, not 0.
  ASSERT_TRUE(cache_.read(0).ok());
  ASSERT_TRUE(cache_.read(20).ok());
  const auto reads0 = disk_.reads();
  ASSERT_TRUE(cache_.read(0).ok());  // still cached
  EXPECT_EQ(reads0, disk_.reads());
  ASSERT_TRUE(cache_.read(1).ok());  // was evicted
  EXPECT_EQ(reads0 + 1, disk_.reads());
}

TEST_F(BufferCacheTest, BypassDoesNotPopulate) {
  ASSERT_OK(disk_.write(9, payload(512, 4)));
  Bytes out(512);
  ASSERT_OK(cache_.read_bypass(9, out));
  EXPECT_TRUE(equal(payload(512, 4), out));
  EXPECT_EQ(0u, cache_.buffers_in_use());
  // But bypass reads *do* see newer cached content (coherence).
  ASSERT_OK(cache_.write_back(9, payload(512, 5)));
  ASSERT_OK(cache_.read_bypass(9, out));
  EXPECT_TRUE(equal(payload(512, 5), out));
}

TEST_F(BufferCacheTest, WriteBypassInvalidatesCachedCopy) {
  ASSERT_OK(cache_.write_back(2, payload(512, 6)));
  ASSERT_OK(cache_.write_bypass(2, payload(512, 7)));
  auto data = cache_.read(2);  // reloads from disk
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(equal(payload(512, 7), data.value()));
}

TEST_F(BufferCacheTest, InvalidateDropsWithoutWriting) {
  ASSERT_OK(cache_.write_back(4, payload(512, 8)));
  cache_.invalidate(4);
  ASSERT_OK(cache_.flush());
  Bytes raw(512);
  ASSERT_OK(disk_.read(4, raw));
  EXPECT_FALSE(equal(payload(512, 8), raw));  // dirty data was dropped
  cache_.invalidate(999);                     // unknown block: no-op
}

TEST_F(BufferCacheTest, RejectsPartialBlockWrites) {
  EXPECT_CODE(bad_argument, cache_.write_through(0, payload(100, 1)));
  EXPECT_CODE(bad_argument, cache_.write_back(0, payload(1000, 1)));
}

TEST_F(BufferCacheTest, CapacityAtLeastOneBuffer) {
  MemDisk disk(512, 8);
  BufferCache tiny(&disk, 1);  // less than a block: still one buffer
  EXPECT_EQ(1u, tiny.capacity_buffers());
  ASSERT_TRUE(tiny.read(0).ok());
  ASSERT_TRUE(tiny.read(1).ok());  // evicts block 0
  EXPECT_EQ(1u, tiny.buffers_in_use());
}

TEST_F(BufferCacheTest, FlushIsIdempotent) {
  ASSERT_OK(cache_.write_back(1, payload(512, 9)));
  ASSERT_OK(cache_.flush());
  const auto writes = disk_.writes();
  ASSERT_OK(cache_.flush());  // nothing dirty: no further disk writes
  EXPECT_EQ(writes, disk_.writes());
}

}  // namespace
}  // namespace bullet::nfsbase
