// Replicated server pairs: create/delete propagation, cross-replica reply
// dedup, client failover, resync convergence, tombstone semantics,
// mixed-version degradation, and the deterministic FaultTransport itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "rpc/failover_transport.h"
#include "rpc/fault_transport.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;
using testing::status_of;

BulletHarness::Options single_disk() {
  BulletHarness::Options options;
  options.replicas = 1;  // pair replication is the cross-server story here
  return options;
}

BulletConfig config_with_seed(std::uint64_t seed) {
  BulletConfig config;
  config.cache_bytes = 1 << 20;
  config.rng_seed = seed;
  return config;
}

// Two Bullet servers sharing the default private port and secret, wired
// as a replicated pair over in-process transports. The two servers answer
// on the SAME public port, so each needs its own LoopbackTransport; the
// client links and the peer links are separate FaultTransports so a test
// can partition the pair while clients still reach both sides (and vice
// versa).
class PairHarness {
 public:
  PairHarness() : a_(single_disk()), b_(single_disk()) {
    a_.reboot(config_with_seed(0xAAA1));
    b_.reboot(config_with_seed(0xBBB2));
    EXPECT_OK(net_a_.register_service(&a_.server()));
    EXPECT_OK(net_b_.register_service(&b_.server()));
    EXPECT_OK(peer_of_a_.register_service(&b_.server()));
    EXPECT_OK(peer_of_b_.register_service(&a_.server()));
    fault_a_ = std::make_unique<rpc::FaultTransport>(&net_a_);
    fault_b_ = std::make_unique<rpc::FaultTransport>(&net_b_);
    peer_fault_a_ = std::make_unique<rpc::FaultTransport>(&peer_of_a_);
    peer_fault_b_ = std::make_unique<rpc::FaultTransport>(&peer_of_b_);
  }

  void attach() {
    a_.server().attach_replica(peer_fault_a_.get(),
                               BulletServer::ReplRole::kPrimary);
    b_.server().attach_replica(peer_fault_b_.get(),
                               BulletServer::ReplRole::kBackup);
  }

  // Cut the pair's peer links both ways. Each side notices (and degrades
  // to solo) at its next push.
  void partition_pair() {
    peer_fault_a_->set_partition(rpc::FaultTransport::Partition::kFull);
    peer_fault_b_->set_partition(rpc::FaultTransport::Partition::kFull);
  }

  void heal_pair() {
    peer_fault_a_->set_partition(rpc::FaultTransport::Partition::kNone);
    peer_fault_b_->set_partition(rpc::FaultTransport::Partition::kNone);
    peer_fault_a_->flush();
    peer_fault_b_->flush();
  }

  BulletServer& a() { return a_.server(); }
  BulletServer& b() { return b_.server(); }
  rpc::FaultTransport& client_link_a() { return *fault_a_; }
  rpc::FaultTransport& client_link_b() { return *fault_b_; }

  // A failover client over both replicas, preferring A.
  BulletClient failover_client(std::uint64_t message_seed) {
    failover_ = std::make_unique<rpc::FailoverTransport>(
        std::vector<rpc::Transport*>{fault_a_.get(), fault_b_.get()});
    BulletClient client(failover_.get(), a_.server().super_capability());
    client.enable_message_ids(message_seed);
    return client;
  }
  rpc::FailoverTransport& failover() { return *failover_; }

 private:
  BulletHarness a_, b_;
  rpc::LoopbackTransport net_a_, net_b_, peer_of_a_, peer_of_b_;
  std::unique_ptr<rpc::FaultTransport> fault_a_, fault_b_;
  std::unique_ptr<rpc::FaultTransport> peer_fault_a_, peer_fault_b_;
  std::unique_ptr<rpc::FailoverTransport> failover_;
};

// --- propagation --------------------------------------------------------

TEST(ReplicationTest, CreatePropagatesToBackupBeforeAck) {
  PairHarness pair;
  pair.attach();
  BulletClient client = pair.failover_client(0x100);

  const Bytes data = payload(4096, 7);
  auto cap = client.create(data, 1);
  ASSERT_OK(status_of(cap));

  // The ack implies the backup holds the file: read it there directly.
  auto copy = pair.b().read(cap.value());
  ASSERT_OK(status_of(copy));
  EXPECT_EQ(data, Bytes(copy.value().begin(), copy.value().end()));

  EXPECT_EQ(1u, pair.a().stats().repl_pushes);
  EXPECT_EQ(1u, pair.b().stats().repl_installs);
  EXPECT_EQ(1u, pair.a().live_files());
  EXPECT_EQ(1u, pair.b().live_files());
}

TEST(ReplicationTest, DeletePropagatesAndLeavesNoGhost) {
  PairHarness pair;
  pair.attach();
  BulletClient client = pair.failover_client(0x200);

  auto cap = client.create(payload(512, 9), 1);
  ASSERT_OK(status_of(cap));
  ASSERT_OK(client.erase(cap.value()));

  EXPECT_CODE(no_such_object, status_of(pair.a().read(cap.value())));
  EXPECT_CODE(no_such_object, status_of(pair.b().read(cap.value())));
  EXPECT_EQ(0u, pair.a().live_files());
  EXPECT_EQ(0u, pair.b().live_files());
}

TEST(ReplicationTest, ReadsFailOverToSurvivingReplica) {
  PairHarness pair;
  pair.attach();
  BulletClient client = pair.failover_client(0x300);

  const Bytes data = payload(2048, 11);
  auto cap = client.create(data, 1);
  ASSERT_OK(status_of(cap));

  // Kill the preferred replica's client link; the read must fail over.
  // The capability verifies at B because the pair shares port + secret.
  pair.client_link_a().set_partition(rpc::FaultTransport::Partition::kFull);
  auto via_b = client.read(cap.value());
  ASSERT_OK(status_of(via_b));
  EXPECT_EQ(data, via_b.value());
  EXPECT_GE(pair.failover().failovers(), 1u);
  EXPECT_EQ(1u, pair.failover().current_replica());

  // Stickiness: the next read goes straight to the survivor.
  const std::uint64_t failovers = pair.failover().failovers();
  EXPECT_OK(status_of(client.read(cap.value())));
  EXPECT_EQ(failovers, pair.failover().failovers());
}

// --- cross-replica dedup ------------------------------------------------

TEST(ReplicationTest, LostAckCreateIsNotDoubleAppliedAcrossFailover) {
  PairHarness pair;
  pair.attach();
  BulletClient client = pair.failover_client(0x400);

  // A executes the create (and pushes the install + dedup record to B),
  // but the client never hears the ack; the failover retry lands on B.
  pair.client_link_a().set_partition(
      rpc::FaultTransport::Partition::kDropReplies);
  const Bytes data = payload(1024, 13);
  auto cap = client.create(data, 1);
  ASSERT_OK(status_of(cap));

  // Applied exactly once: one file per replica, B answered from the
  // replicated reply record rather than re-executing.
  EXPECT_EQ(1u, pair.a().live_files());
  EXPECT_EQ(1u, pair.b().live_files());
  EXPECT_GE(pair.b().stats().repl_dedup_hits, 1u);

  // The returned capability is the one A minted; it reads everywhere.
  auto from_a = pair.a().read(cap.value());
  ASSERT_OK(status_of(from_a));
  EXPECT_EQ(data, Bytes(from_a.value().begin(), from_a.value().end()));
  auto from_b = pair.b().read(cap.value());
  ASSERT_OK(status_of(from_b));
  EXPECT_EQ(data, Bytes(from_b.value().begin(), from_b.value().end()));
}

TEST(ReplicationTest, LostAckDeleteIsIdempotentAcrossFailover) {
  PairHarness pair;
  pair.attach();
  BulletClient client = pair.failover_client(0x500);

  auto cap = client.create(payload(256, 17), 1);
  ASSERT_OK(status_of(cap));

  // A erases and propagates, the ack is lost, the retry lands on B —
  // which must answer ok from its record, not no_such_object.
  pair.client_link_a().set_partition(
      rpc::FaultTransport::Partition::kDropReplies);
  ASSERT_OK(client.erase(cap.value()));
  EXPECT_EQ(0u, pair.a().live_files());
  EXPECT_EQ(0u, pair.b().live_files());
}

// Property: one logical create retried through arbitrary client-link
// faults (the retransmit keeps its message id) is applied exactly once
// and the acked capability reads back on both replicas.
TEST(ReplicationProperty, CreateDedupAcrossFailoverManySchedules) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    PairHarness pair;
    pair.attach();
    const std::uint64_t message_seed = seed << 32;
    BulletClient client = pair.failover_client(message_seed);

    // Faulty client links both ways; the peer link stays clean so every
    // accepted create reaches both replicas.
    sim::FaultParams params;
    params.drop_request = 0.2;
    params.drop_reply = 0.2;
    params.duplicate = 0.15;
    params.reorder = 0.1;
    pair.client_link_a().set_plan(sim::FaultPlan(params, seed * 11));
    pair.client_link_b().set_plan(sim::FaultPlan(params, seed * 13));

    const Bytes data = payload(777, seed);
    Result<Capability> cap = Error(ErrorCode::unreachable, "not yet");
    for (int attempt = 0; attempt < 64 && !cap.ok(); ++attempt) {
      // Re-arm the same message id: each attempt is a retransmit of the
      // same logical operation, exactly what a real client's retry loop
      // sends after a timeout.
      client.enable_message_ids(message_seed);
      cap = client.create(data, 1);
    }
    ASSERT_OK(status_of(cap));

    // Drain held (reordered) retransmits, then check exactly-once.
    pair.client_link_a().flush();
    pair.client_link_b().flush();
    EXPECT_EQ(1u, pair.a().live_files()) << "seed " << seed;
    EXPECT_EQ(1u, pair.b().live_files()) << "seed " << seed;
    auto from_a = pair.a().read(cap.value());
    ASSERT_OK(status_of(from_a));
    EXPECT_EQ(data, Bytes(from_a.value().begin(), from_a.value().end()));
    auto from_b = pair.b().read(cap.value());
    ASSERT_OK(status_of(from_b));
    EXPECT_EQ(data, Bytes(from_b.value().begin(), from_b.value().end()));
  }
}

// --- resync -------------------------------------------------------------

TEST(ReplicationTest, ResyncConvergesAfterSplitBrainCreates) {
  PairHarness pair;
  pair.attach();
  BulletClient client = pair.failover_client(0x600);

  auto shared = client.create(payload(300, 1), 1);
  ASSERT_OK(status_of(shared));

  // Independent creates on both sides of a partition. (The direct C++
  // API does not propagate — these model mutations the peer never saw.)
  pair.partition_pair();
  auto only_a = pair.a().create(payload(400, 2), 1);
  ASSERT_OK(status_of(only_a));
  auto only_b = pair.b().create(payload(500, 3), 1);
  ASSERT_OK(status_of(only_b));
  // Split allocation keeps the independent creates off each other's slots.
  EXPECT_NE(only_a.value().object, only_b.value().object);

  pair.heal_pair();
  auto report = pair.a().resync_with_peer();
  ASSERT_OK(status_of(report));
  EXPECT_EQ(1u, report.value().files_pulled);
  EXPECT_EQ(1u, report.value().files_pushed);
  EXPECT_EQ(0u, report.value().conflicts);

  // Both replicas now hold all three files, byte-identical manifests.
  EXPECT_EQ(3u, pair.a().live_files());
  EXPECT_EQ(3u, pair.b().live_files());
  for (const auto& cap : {shared.value(), only_a.value(), only_b.value()}) {
    EXPECT_OK(status_of(pair.a().read(cap)));
    EXPECT_OK(status_of(pair.b().read(cap)));
  }

  auto ma = pair.a().replica_manifest();
  auto mb = pair.b().replica_manifest();
  ASSERT_EQ(ma.files.size(), mb.files.size());
  auto by_object = [](const wire::ReplManifest::File& x,
                      const wire::ReplManifest::File& y) {
    return x.object < y.object;
  };
  std::sort(ma.files.begin(), ma.files.end(), by_object);
  std::sort(mb.files.begin(), mb.files.end(), by_object);
  for (std::size_t i = 0; i < ma.files.size(); ++i) {
    EXPECT_EQ(ma.files[i].object, mb.files[i].object);
    EXPECT_EQ(ma.files[i].random, mb.files[i].random);
    EXPECT_EQ(ma.files[i].size, mb.files[i].size);
  }
  // Resync cleared the tombstone logs on both sides.
  EXPECT_TRUE(ma.tombstones.empty());
  EXPECT_TRUE(mb.tombstones.empty());
}

TEST(ReplicationTest, TombstoneWinsOverStaleCopyOnResync) {
  PairHarness pair;
  pair.attach();
  BulletClient client = pair.failover_client(0x700);

  auto cap = client.create(payload(350, 5), 1);
  ASSERT_OK(status_of(cap));

  // Delete on A while B is unreachable: the push fails (A degrades to
  // solo), the tombstone stays behind.
  pair.partition_pair();
  ASSERT_OK(client.erase(cap.value()));
  EXPECT_EQ(0u, pair.a().live_files());
  EXPECT_EQ(1u, pair.b().live_files());  // B still holds the stale copy
  EXPECT_GE(pair.a().stats().repl_push_failures, 1u);
  EXPECT_FALSE(pair.a().repl_status().peer_healthy);

  pair.heal_pair();
  auto report = pair.a().resync_with_peer();
  ASSERT_OK(status_of(report));
  EXPECT_EQ(1u, report.value().erases_applied);
  EXPECT_EQ(0u, report.value().files_pulled);  // the delete won, no copy-back

  // No ghost on either side, and the pair is healthy again.
  EXPECT_EQ(0u, pair.a().live_files());
  EXPECT_EQ(0u, pair.b().live_files());
  EXPECT_CODE(no_such_object, status_of(pair.b().read(cap.value())));
  EXPECT_TRUE(pair.a().repl_status().peer_healthy);
}

TEST(ReplicationTest, DuplicateCreateFromBothSidesKeepsBothCopies) {
  PairHarness pair;
  pair.attach();
  pair.partition_pair();

  // The same logical create (one message id) executed independently on
  // both sides of the partition — a client that retried across it. Each
  // side's push fails, so both apply solo.
  const Bytes data = payload(600, 21);
  const std::uint64_t message_id = 0xD00D;
  rpc::LoopbackTransport direct_a, direct_b;
  ASSERT_OK(direct_a.register_service(&pair.a()));
  ASSERT_OK(direct_b.register_service(&pair.b()));
  BulletClient client_a(&direct_a, pair.a().super_capability());
  BulletClient client_b(&direct_b, pair.b().super_capability());
  client_a.enable_message_ids(message_id);
  client_b.enable_message_ids(message_id);
  auto cap_a = client_a.create(data, 1);
  auto cap_b = client_b.create(data, 1);
  ASSERT_OK(status_of(cap_a));
  ASSERT_OK(status_of(cap_b));
  EXPECT_NE(cap_a.value().object, cap_b.value().object);

  pair.heal_pair();
  auto report = pair.a().resync_with_peer();
  ASSERT_OK(status_of(report));
  EXPECT_EQ(1u, report.value().duplicates_reconciled);

  // Neither copy was erased: the client may hold either capability, so
  // resync keeps both (the unreferenced twin is garbage, not a ghost).
  EXPECT_EQ(2u, pair.a().live_files());
  EXPECT_EQ(2u, pair.b().live_files());
  EXPECT_OK(status_of(pair.a().read(cap_b.value())));
  EXPECT_OK(status_of(pair.b().read(cap_a.value())));
}

TEST(ReplicationTest, CrashedBackupCatchesUpByPlainFileCopy) {
  PairHarness pair;
  pair.attach();
  BulletClient client = pair.failover_client(0x800);

  pair.partition_pair();  // "crashed backup": B unreachable from A
  std::vector<Capability> caps;
  for (int i = 0; i < 5; ++i) {
    auto cap = client.create(payload(200 + 100 * i, 30 + i), 1);
    ASSERT_OK(status_of(cap));
    caps.push_back(cap.value());
  }
  EXPECT_EQ(0u, pair.b().live_files());
  EXPECT_FALSE(pair.a().repl_status().peer_healthy);  // degraded to solo

  // The returning replica initiates the resync and pulls what it missed.
  pair.heal_pair();
  auto report = pair.b().resync_with_peer();
  ASSERT_OK(status_of(report));
  EXPECT_EQ(5u, report.value().files_pulled);
  EXPECT_EQ(5u, pair.b().live_files());
  for (const auto& cap : caps) {
    EXPECT_OK(status_of(pair.b().read(cap)));
  }
  EXPECT_EQ(1u, pair.b().stats().repl_resyncs);
  EXPECT_EQ(5u, pair.b().stats().repl_resync_files);
}

TEST(ReplicationTest, InstallRejectsNullSlotAndRandom) {
  BulletHarness h(single_disk());
  const Bytes data = payload(64, 1);
  EXPECT_CODE(bad_argument,
              status_of(h.server().install_object(0, 77, data, 0)));
  EXPECT_CODE(bad_argument,
              status_of(h.server().install_object(3, 0, data, 0)));
}

// --- mixed versions -----------------------------------------------------

// A pre-replication server: opcodes it does not know answer
// not_supported — exactly what the real legacy dispatch does.
class LegacyShim final : public rpc::Service {
 public:
  explicit LegacyShim(BulletServer* inner) : inner_(inner) {}
  Port public_port() const noexcept override { return inner_->public_port(); }
  rpc::Reply handle(const rpc::Request& request) override {
    if (request.opcode == wire::kReplicate ||
        request.opcode == wire::kReplResync) {
      return rpc::Reply::error(ErrorCode::not_supported);
    }
    return inner_->handle(request);
  }

 private:
  BulletServer* inner_;
};

TEST(ReplicationTest, LegacyPeerDegradesToSoloWithoutWedging) {
  BulletHarness a(single_disk()), b(single_disk());
  a.reboot(config_with_seed(0xA));
  b.reboot(config_with_seed(0xB));
  LegacyShim legacy(&b.server());
  rpc::LoopbackTransport peer_link, client_link;
  ASSERT_OK(peer_link.register_service(&legacy));
  ASSERT_OK(client_link.register_service(&a.server()));

  // The attach ping hits the legacy peer's not_supported: permanently
  // incompatible, never healthy.
  a.server().attach_replica(&peer_link, BulletServer::ReplRole::kPrimary);
  auto status = a.server().repl_status();
  EXPECT_TRUE(status.peer_incompatible);
  EXPECT_FALSE(status.peer_healthy);

  // Creates keep working solo and no further peer traffic is attempted.
  BulletClient client(&client_link, a.server().super_capability());
  client.enable_message_ids(0x900);
  const std::uint64_t calls_before = peer_link.calls();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(status_of(client.create(payload(128, 40 + i), 1)));
  }
  EXPECT_EQ(calls_before, peer_link.calls());
  EXPECT_EQ(3u, a.server().live_files());
  EXPECT_EQ(0u, b.server().live_files());

  // A resync request against the legacy peer fails cleanly, no wedge.
  EXPECT_CODE(not_supported, status_of(a.server().resync_with_peer()));
}

// --- the fault transport itself ----------------------------------------

// Tallies what the service actually saw, for determinism checks.
class CountingService final : public rpc::Service {
 public:
  explicit CountingService(Port port) : port_(port) {}
  Port public_port() const noexcept override { return port_; }
  rpc::Reply handle(const rpc::Request&) override {
    ++handled_;
    return rpc::Reply::success();
  }
  std::uint64_t handled() const noexcept { return handled_; }

 private:
  Port port_;
  std::uint64_t handled_ = 0;
};

TEST(FaultTransportTest, SameSeedReplaysIdenticalSchedule) {
  rpc::FaultTransport::Counters first{};
  std::uint64_t first_handled = 0;
  for (int round = 0; round < 2; ++round) {
    rpc::LoopbackTransport inner;
    CountingService service(Port(0x77));
    ASSERT_OK(inner.register_service(&service));
    rpc::FaultTransport fault(&inner,
                              sim::FaultPlan(sim::FaultParams::flaky(), 42));

    rpc::Request request;
    request.target.port = Port(0x77);
    for (int i = 0; i < 200; ++i) {
      (void)fault.call(request);
    }
    if (round == 0) {
      first = fault.counters();
      first_handled = service.handled();
      continue;
    }
    const auto c = fault.counters();
    EXPECT_EQ(first.dropped_requests, c.dropped_requests);
    EXPECT_EQ(first.dropped_replies, c.dropped_replies);
    EXPECT_EQ(first.duplicated, c.duplicated);
    EXPECT_EQ(first.reordered, c.reordered);
    EXPECT_EQ(first_handled, service.handled());
    // flaky() actually perturbs something over 200 calls.
    EXPECT_GT(c.dropped_requests + c.dropped_replies + c.duplicated +
                  c.reordered,
              0u);
  }
}

TEST(FaultTransportTest, DroppedReplyStillExecutes) {
  rpc::LoopbackTransport inner;
  CountingService service(Port(0x78));
  ASSERT_OK(inner.register_service(&service));
  sim::FaultParams params;
  params.drop_reply = 1.0;
  rpc::FaultTransport fault(&inner, sim::FaultPlan(params, 1));

  rpc::Request request;
  request.target.port = Port(0x78);
  EXPECT_CODE(unreachable, status_of(fault.call(request)));
  EXPECT_EQ(1u, service.handled());  // the side effect happened
  EXPECT_EQ(1u, fault.counters().dropped_replies);
}

TEST(FaultTransportTest, ReorderedRequestDeliversStaleOnFlush) {
  rpc::LoopbackTransport inner;
  CountingService service(Port(0x79));
  ASSERT_OK(inner.register_service(&service));
  sim::FaultParams params;
  params.reorder = 1.0;
  params.reorder_gap_max = 3;
  rpc::FaultTransport fault(&inner, sim::FaultPlan(params, 2));

  rpc::Request request;
  request.target.port = Port(0x79);
  EXPECT_CODE(unreachable, status_of(fault.call(request)));
  EXPECT_EQ(0u, service.handled());  // held, not delivered
  fault.flush();
  EXPECT_EQ(1u, service.handled());  // stale delivery when the link heals
  EXPECT_EQ(1u, fault.counters().reordered);
}

TEST(FaultTransportTest, PartitionsBlockByDirectionUntilHealed) {
  rpc::LoopbackTransport inner;
  CountingService service(Port(0x7A));
  ASSERT_OK(inner.register_service(&service));
  rpc::FaultTransport fault(&inner);

  rpc::Request request;
  request.target.port = Port(0x7A);
  fault.set_partition(rpc::FaultTransport::Partition::kFull);
  EXPECT_CODE(unreachable, status_of(fault.call(request)));
  EXPECT_EQ(0u, service.handled());

  fault.set_partition(rpc::FaultTransport::Partition::kDropReplies);
  EXPECT_CODE(unreachable, status_of(fault.call(request)));
  EXPECT_EQ(1u, service.handled());  // one-way: it heard us, we never learn

  fault.set_partition(rpc::FaultTransport::Partition::kNone);
  EXPECT_OK(status_of(fault.call(request)));
  EXPECT_EQ(2u, service.handled());
  EXPECT_EQ(2u, fault.counters().partitioned);
}

TEST(FailoverTransportTest, AdvancesOnUnreachableAndSticks) {
  rpc::LoopbackTransport net_a, net_b;
  CountingService only_b(Port(0x7B));
  ASSERT_OK(net_b.register_service(&only_b));  // A answers nothing
  rpc::FailoverTransport failover({&net_a, &net_b});

  rpc::Request request;
  request.target.port = Port(0x7B);
  EXPECT_OK(status_of(failover.call(request)));
  EXPECT_EQ(1u, only_b.handled());
  EXPECT_EQ(1u, failover.current_replica());
  EXPECT_EQ(1u, failover.failovers());

  // Sticky: the next call goes straight to B, no re-probing of A.
  EXPECT_OK(status_of(failover.call(request)));
  EXPECT_EQ(1u, failover.failovers());
  EXPECT_EQ(0u, failover.pushback_failovers());
}

TEST(FailoverTransportTest, GivesUpAfterMaxCyclesWhenAllDead) {
  rpc::LoopbackTransport net_a, net_b;  // nobody registered anywhere
  rpc::FailoverTransport failover({&net_a, &net_b});
  rpc::Request request;
  request.target.port = Port(0x7C);
  // Exhaustion reports the distinct every-replica-down code so callers can
  // tell a dead shard from a single flaky replica.
  const Status st = status_of(failover.call(request));
  EXPECT_CODE(all_replicas_unreachable, st);
  EXPECT_NE(std::string::npos, st.error().message.find("2 replica(s)"));
}

}  // namespace
}  // namespace bullet
