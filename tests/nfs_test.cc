// Tests for the baseline block file server: layout, bmap (direct /
// indirect / double indirect), buffer cache, free-behind, persistence.
#include <gtest/gtest.h>

#include <set>

#include "common/crc.h"
#include "nfsbase/client.h"
#include "nfsbase/server.h"
#include "tests/test_util.h"

namespace bullet::nfsbase {
namespace {

using ::bullet::testing::payload;
using ::bullet::testing::status_of;

class NfsTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBlockSize = 8192;
  static constexpr std::uint64_t kBlocks = 2048;  // 16 MB device

  NfsTest() : disk_(kBlockSize, kBlocks) {
    EXPECT_TRUE(NfsServer::format(disk_, 128).ok());
    boot();
  }

  void boot(NfsConfig config = NfsConfig()) {
    server_.reset();
    auto server = NfsServer::start(&disk_, config);
    ASSERT_TRUE(server.ok()) << server.error().to_string();
    server_ = std::move(server).value();
  }

  MemDisk disk_;
  std::unique_ptr<NfsServer> server_;
};

TEST_F(NfsTest, FormatRejectsBadParameters) {
  MemDisk tiny(8192, 2);
  EXPECT_CODE(bad_argument, NfsServer::format(tiny, 1 << 20));
  MemDisk odd(100, 64);
  EXPECT_CODE(bad_argument, NfsServer::format(odd, 16));
  MemDisk raw(8192, 64);
  auto started = NfsServer::start(&raw, NfsConfig());
  EXPECT_CODE(corrupt, status_of(started));
}

TEST_F(NfsTest, CreateWriteReadRoundtrip) {
  auto handle = server_->create("file.txt");
  ASSERT_TRUE(handle.ok());
  const Bytes data = payload(5000, 1);
  auto size = server_->write(handle.value(), 0, data);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(5000u, size.value());
  auto read = server_->read(handle.value(), 0, 5000);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(equal(data, read.value()));
}

TEST_F(NfsTest, LookupFindsCreatedFile) {
  auto handle = server_->create("hello");
  ASSERT_TRUE(handle.ok());
  auto found = server_->lookup("hello");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(handle.value().object, found.value().object);
  EXPECT_CODE(not_found, status_of(server_->lookup("absent")));
}

TEST_F(NfsTest, DuplicateCreateRejected) {
  ASSERT_TRUE(server_->create("dup").ok());
  EXPECT_CODE(already_exists, status_of(server_->create("dup")));
}

TEST_F(NfsTest, SizesAcrossMappingBoundaries) {
  // 10 direct blocks = 80 KB; indirect starts beyond that; exercise sizes
  // that straddle each boundary.
  const std::uint64_t direct_limit = kDirectBlocks * kBlockSize;
  for (const std::uint64_t n :
       {std::uint64_t{1}, kBlockSize - 1, kBlockSize + 1, direct_limit - 1,
        direct_limit + 1, direct_limit + 5 * kBlockSize}) {
    const std::string name = "f" + std::to_string(n);
    auto handle = server_->create(name);
    ASSERT_TRUE(handle.ok());
    const Bytes data = payload(n, n);
    ASSERT_TRUE(server_->write(handle.value(), 0, data).ok()) << n;
    auto read = server_->read(handle.value(), 0,
                              static_cast<std::uint32_t>(n));
    ASSERT_TRUE(read.ok()) << n;
    EXPECT_EQ(crc32c(data), crc32c(read.value())) << n;
  }
}

TEST_F(NfsTest, DoubleIndirectReachedBySparseWrite) {
  const std::uint32_t ppb = server_->layout().pointers_per_block();
  const std::uint64_t offset =
      (kDirectBlocks + ppb + 3) * kBlockSize;  // into double indirection
  auto handle = server_->create("sparse");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(server_->write(handle.value(), offset, as_span("tail")).ok());
  auto attr = server_->getattr(handle.value());
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(offset + 4, attr.value().size);
  // The hole reads as zeros; the tail reads back.
  auto hole = server_->read(handle.value(), 4096, 16);
  ASSERT_TRUE(hole.ok());
  for (const auto b : hole.value()) EXPECT_EQ(0, b);
  auto tail = server_->read(handle.value(), offset, 4);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ("tail", to_string(tail.value()));
}

TEST_F(NfsTest, PartialOverwriteReadModifyWrite) {
  auto handle = server_->create("rmw");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(server_->write(handle.value(), 0, payload(10000, 1)).ok());
  // Overwrite 100 bytes in the middle of block 0.
  ASSERT_TRUE(server_->write(handle.value(), 500, payload(100, 2)).ok());
  Bytes expected = payload(10000, 1);
  const Bytes patch = payload(100, 2);
  std::copy(patch.begin(), patch.end(), expected.begin() + 500);
  auto read = server_->read(handle.value(), 0, 10000);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(equal(expected, read.value()));
}

TEST_F(NfsTest, ReadBeyondEofIsShort) {
  auto handle = server_->create("short");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(server_->write(handle.value(), 0, payload(100, 1)).ok());
  auto read = server_->read(handle.value(), 50, 1000);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(50u, read.value().size());
  auto past = server_->read(handle.value(), 200, 10);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past.value().empty());
}

TEST_F(NfsTest, BlocksAreScattered) {
  // The structural property the paper attacks: consecutive file blocks are
  // not physically adjacent (interleaved allocation).
  auto handle = server_->create("scattered");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(
      server_->write(handle.value(), 0, payload(6 * kBlockSize, 1)).ok());
  auto blocks = server_->file_blocks(handle.value());
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(6u, blocks.value().size());
  int adjacent = 0;
  for (std::size_t i = 1; i < blocks.value().size(); ++i) {
    if (blocks.value()[i] == blocks.value()[i - 1] + 1) ++adjacent;
  }
  EXPECT_EQ(0, adjacent);
}

TEST_F(NfsTest, RemoveFreesEverything) {
  // Warm up the root directory so its own data block is already allocated
  // and does not show up as a "leak" below.
  ASSERT_TRUE(server_->create("warmup").ok());
  ASSERT_OK(server_->remove("warmup"));
  const auto free_before = server_->free_blocks();
  auto handle = server_->create("big");
  ASSERT_TRUE(handle.ok());
  // Past the indirect boundary so an indirect block is allocated too.
  ASSERT_TRUE(server_
                  ->write(handle.value(), 0,
                          payload((kDirectBlocks + 4) * kBlockSize, 3))
                  .ok());
  EXPECT_LT(server_->free_blocks(), free_before);
  ASSERT_OK(server_->remove("big"));
  EXPECT_EQ(free_before, server_->free_blocks());
  EXPECT_CODE(no_such_object, status_of(server_->read(handle.value(), 0, 1)));
}

TEST_F(NfsTest, TruncateShrinksAndFrees) {
  auto handle = server_->create("trunc");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(server_->write(handle.value(), 0, payload(5 * kBlockSize, 1)).ok());
  const auto free_mid = server_->free_blocks();
  ASSERT_OK(server_->truncate(handle.value(), kBlockSize + 10));
  EXPECT_EQ(free_mid + 3, server_->free_blocks());
  auto attr = server_->getattr(handle.value());
  EXPECT_EQ(kBlockSize + 10, attr.value().size);
  // Growing back reuses holes without stale data leaking into new blocks.
  ASSERT_TRUE(server_->write(handle.value(), 4 * kBlockSize, as_span("x")).ok());
  auto hole = server_->read(handle.value(), 2 * kBlockSize, 64);
  ASSERT_TRUE(hole.ok());
  for (const auto b : hole.value()) EXPECT_EQ(0, b) << "stale data resurfaced";
  EXPECT_CODE(bad_argument, server_->truncate(handle.value(), 1 << 30));
}

TEST_F(NfsTest, CapabilityProtection) {
  auto handle = server_->create("secret");
  ASSERT_TRUE(handle.ok());
  Capability forged = handle.value();
  forged.check ^= 1;
  EXPECT_CODE(bad_capability, status_of(server_->read(forged, 0, 1)));
  EXPECT_CODE(bad_argument,
              status_of(server_->read(server_->super_capability(), 0, 1)));
}

TEST_F(NfsTest, PersistsAcrossRemount) {
  auto handle = server_->create("durable");
  ASSERT_TRUE(handle.ok());
  const Bytes data = payload(100000, 9);
  ASSERT_TRUE(server_->write(handle.value(), 0, data).ok());
  ASSERT_OK(server_->sync());
  boot();  // remount from the same device
  auto found = server_->lookup("durable");
  ASSERT_TRUE(found.ok());
  auto read = server_->read(found.value(), 0, 100000);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(crc32c(data), crc32c(read.value()));
  // The original handle (same inode random) still verifies after remount.
  EXPECT_TRUE(server_->read(handle.value(), 0, 16).ok());
}

TEST_F(NfsTest, RemovalPersistsAcrossRemount) {
  ASSERT_TRUE(server_->create("gone").ok());
  ASSERT_OK(server_->remove("gone"));
  ASSERT_OK(server_->sync());
  boot();
  EXPECT_CODE(not_found, status_of(server_->lookup("gone")));
  EXPECT_EQ(0u, server_->stats().files_live);
}

TEST_F(NfsTest, SmallFilesStayInBufferCache) {
  NfsConfig config;
  boot(config);
  auto handle = server_->create("small");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(server_->write(handle.value(), 0, payload(16384, 1)).ok());
  const auto disk_reads_before = disk_.reads();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server_->read(handle.value(), 0, 16384).ok());
  }
  // All five reads served from the buffer cache.
  EXPECT_EQ(disk_reads_before, disk_.reads());
}

TEST_F(NfsTest, LargeFilesBypassBufferCache) {
  NfsConfig config;
  config.free_behind_bytes = 64 * 1024;
  boot(config);
  auto handle = server_->create("large");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(server_->write(handle.value(), 0, payload(256 * 1024, 1)).ok());
  const auto disk_reads_before = disk_.reads();
  ASSERT_TRUE(server_->read(handle.value(), 0, 256 * 1024).ok());
  // Every data block came from the device (free-behind).
  EXPECT_GE(disk_.reads() - disk_reads_before, 32u);
}

TEST_F(NfsTest, WriteThroughReachesDiskImmediately) {
  auto handle = server_->create("sync");
  ASSERT_TRUE(handle.ok());
  const auto writes_before = disk_.writes();
  ASSERT_TRUE(server_->write(handle.value(), 0, payload(8192, 1)).ok());
  // Data block + inode block at minimum, synchronously.
  EXPECT_GE(disk_.writes() - writes_before, 2u);
}

TEST_F(NfsTest, StatsReflectActivity) {
  auto handle = server_->create("s");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(server_->write(handle.value(), 0, payload(100, 1)).ok());
  ASSERT_TRUE(server_->read(handle.value(), 0, 100).ok());
  const auto stats = server_->stats();
  EXPECT_EQ(1u, stats.creates);
  EXPECT_EQ(1u, stats.writes);
  EXPECT_EQ(1u, stats.reads);
  EXPECT_EQ(1u, stats.files_live);
}

// --- client over the wire ---------------------------------------------------

TEST_F(NfsTest, ClientChunkedTransfer) {
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(server_.get()));
  NfsClient client(&transport, server_->super_capability());

  const Bytes data = payload(100000, 4);  // ~13 RPC chunks
  auto handle = client.write_file("chunked", data);
  ASSERT_TRUE(handle.ok());
  auto read = client.read_file(handle.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(crc32c(data), crc32c(read.value()));
  // write RPCs = ceil(100000 / 8192) = 13
  EXPECT_EQ(13u, server_->stats().writes);
  EXPECT_EQ(13u, server_->stats().reads);
  ASSERT_OK(client.remove("chunked"));
  auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(0u, stats.value().files_live);
}

TEST_F(NfsTest, ClientErrorsPropagate) {
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(server_.get()));
  NfsClient client(&transport, server_->super_capability());
  EXPECT_CODE(not_found, status_of(client.lookup("missing")));
  EXPECT_CODE(not_found, client.remove("missing"));
  EXPECT_CODE(bad_argument, status_of(client.create("")));
}

}  // namespace
}  // namespace bullet::nfsbase
