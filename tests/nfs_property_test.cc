// Randomized property tests for the baseline block server: a long random
// sequence of create/write/read/truncate/remove operations checked against
// an in-memory oracle, with block accounting verified throughout and a
// remount at the end.
#include <gtest/gtest.h>

#include <map>

#include "common/crc.h"
#include "nfsbase/server.h"
#include "tests/test_util.h"

namespace bullet::nfsbase {
namespace {

using ::bullet::testing::payload;

struct OracleFile {
  Capability handle;
  Bytes contents;
};

class NfsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NfsPropertyTest, RandomOpsMatchOracle) {
  MemDisk disk(8192, 1024);  // 8 MB
  ASSERT_OK(NfsServer::format(disk, 64));
  NfsConfig config;
  config.free_behind_bytes = 64 * 1024;  // exercise both cache paths
  auto started = NfsServer::start(&disk, config);
  ASSERT_TRUE(started.ok());
  auto server = std::move(started).value();

  Rng rng(GetParam());
  std::map<std::string, OracleFile> oracle;
  int name_counter = 0;

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 25 || oracle.empty()) {
      // CREATE + initial write.
      const std::string name = "f" + std::to_string(name_counter++);
      auto handle = server->create(name);
      if (!handle.ok()) {
        EXPECT_EQ(ErrorCode::no_space, handle.code());
        continue;
      }
      Bytes data(rng.next_below(120000));  // may cross indirect boundary
      rng.fill(data);
      auto wrote = server->write(handle.value(), 0, data);
      if (!wrote.ok()) {
        EXPECT_EQ(ErrorCode::no_space, wrote.code());
        ASSERT_OK(server->remove(name));
        continue;
      }
      oracle.emplace(name, OracleFile{handle.value(), std::move(data)});
    } else if (dice < 55) {
      // Partial WRITE at a random offset (may extend the file).
      auto it = oracle.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.next_below(oracle.size())));
      OracleFile& file = it->second;
      const std::uint64_t offset =
          rng.next_below(file.contents.size() + 4096);
      Bytes patch(rng.next_range(1, 20000));
      rng.fill(patch);
      auto wrote = server->write(file.handle, offset, patch);
      if (!wrote.ok()) {
        EXPECT_EQ(ErrorCode::no_space, wrote.code());
        continue;
      }
      if (offset + patch.size() > file.contents.size()) {
        file.contents.resize(offset + patch.size(), 0);
      }
      std::copy(patch.begin(), patch.end(),
                file.contents.begin() + static_cast<std::ptrdiff_t>(offset));
      EXPECT_EQ(file.contents.size(), wrote.value());
    } else if (dice < 80) {
      // READ a random slice and compare.
      auto it = oracle.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.next_below(oracle.size())));
      const OracleFile& file = it->second;
      const std::uint64_t offset =
          rng.next_below(file.contents.size() + 100);
      const auto length =
          static_cast<std::uint32_t>(rng.next_below(40000) + 1);
      auto read = server->read(file.handle, offset, length);
      ASSERT_TRUE(read.ok()) << read.error().to_string();
      Bytes expected;
      if (offset < file.contents.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(length, file.contents.size() - offset);
        expected.assign(
            file.contents.begin() + static_cast<std::ptrdiff_t>(offset),
            file.contents.begin() + static_cast<std::ptrdiff_t>(offset + n));
      }
      ASSERT_TRUE(equal(expected, read.value()))
          << it->first << " offset " << offset << " step " << step;
    } else if (dice < 90) {
      // TRUNCATE to a random smaller size.
      auto it = oracle.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.next_below(oracle.size())));
      OracleFile& file = it->second;
      const std::uint64_t target = rng.next_below(file.contents.size() + 1);
      ASSERT_OK(server->truncate(file.handle, target));
      file.contents.resize(target);
    } else {
      // REMOVE.
      auto it = oracle.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.next_below(oracle.size())));
      ASSERT_OK(server->remove(it->first));
      oracle.erase(it);
    }
  }

  // Block accounting: freeing everything returns the disk to its baseline.
  EXPECT_EQ(oracle.size(), server->stats().files_live);

  // Remount and verify every file end-to-end.
  ASSERT_OK(server->sync());
  server.reset();
  auto remounted = NfsServer::start(&disk, config);
  ASSERT_TRUE(remounted.ok());
  for (const auto& [name, file] : oracle) {
    auto handle = remounted.value()->lookup(name);
    ASSERT_TRUE(handle.ok()) << name;
    auto read = remounted.value()->read(
        handle.value(), 0, static_cast<std::uint32_t>(file.contents.size()));
    ASSERT_TRUE(read.ok()) << name;
    EXPECT_EQ(crc32c(file.contents), crc32c(read.value())) << name;
  }

  // Delete everything; all data blocks must come back.
  std::vector<std::string> names;
  for (const auto& [name, file] : oracle) names.push_back(name);
  for (const auto& name : names) ASSERT_OK(remounted.value()->remove(name));
  const auto& sb = remounted.value()->layout().superblock();
  // Everything except metadata and the root directory's own block(s).
  const std::uint32_t data_blocks = sb.total_blocks - sb.data_start;
  EXPECT_GE(remounted.value()->free_blocks() + 2, data_blocks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NfsPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace bullet::nfsbase
