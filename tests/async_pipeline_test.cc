// The async disk pipeline end to end. Cache-miss reads and creates park
// as continuations on the AsyncDiskQueue and resume on completion threads
// while incremental compaction slides files underneath them; erase lands
// mid-fill; the UDP worker pool runs the same storm over the wire. The
// invariants under test:
//
//   * a parked request resumes with the right bytes (CRC-exact), and a
//     pinned span stays valid across concurrent compaction steps;
//   * with a completion pool (io_threads > 0) no submitter ever executes
//     a device op inline: AsyncDiskQueue::Stats::inline_completions == 0;
//   * concurrent misses for one file join a single fill (one device read);
//   * erase during an in-flight fill defers the extent/inode free and the
//     reader gets no_such_object or valid bytes — never garbage;
//   * per-client reply ordering holds through parked continuations (each
//     UDP client's storm sees only its own, correct replies).
//
// Run under ThreadSanitizer (the "concurrency" ctest label) to turn "it
// happened to pass" into "no data races were observed".
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "common/crc.h"
#include "rpc/udp_transport.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;

// Blocks until `count` async callbacks have checked in.
class Latch {
 public:
  explicit Latch(int count) : remaining_(count) {}
  void count_down() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

BulletConfig async_config(unsigned io_threads) {
  BulletConfig config;
  config.cache_bytes = 1 << 20;
  config.io_threads = io_threads;
  return config;
}

TEST(AsyncPipelineTest, InlineModeCompletesSynchronously) {
  // io_threads == 0: every submit executes inline, so the continuation has
  // already run when the call returns — the deterministic compatibility
  // mode single-threaded callers and SimDisk rely on.
  BulletHarness h;
  h.reboot(async_config(0));
  const Bytes data = testing::payload(5000, 42);

  std::optional<Result<Capability>> created;
  h.server().create_async(data, 2, [&](Result<Capability> cap) {
    created = std::move(cap);
  });
  ASSERT_TRUE(created.has_value());
  ASSERT_TRUE(created->ok());

  // Drop the cache (fresh boot) so the read is a genuine miss.
  h.reboot(async_config(0));
  std::optional<Result<BulletServer::PinnedFile>> read;
  h.server().read_pinned_async(created->value(), [&](auto r) {
    read = std::move(r);
  });
  ASSERT_TRUE(read.has_value());
  ASSERT_TRUE(read->ok());
  EXPECT_EQ(crc32c(data), crc32c(read->value().data));

  const auto qs = h.server().io_queue().stats();
  EXPECT_EQ(0u, qs.inflight);
  EXPECT_GT(qs.inline_completions, 0u);
  EXPECT_EQ(qs.submitted, qs.completed);
}

TEST(AsyncPipelineTest, MissParksAndResumesOffThread) {
  BulletHarness h;
  h.reboot(async_config(0));
  const Bytes data = testing::payload(20000, 7);
  auto cap = h.server().create(data, 2);
  ASSERT_TRUE(cap.ok());

  // Fresh boot with a completion pool: the read misses, parks, resumes.
  h.reboot(async_config(2));
  Latch latch(1);
  std::optional<Result<BulletServer::PinnedFile>> read;
  h.server().read_pinned_async(cap.value(), [&](auto r) {
    read = std::move(r);
    latch.count_down();
  });
  latch.wait();
  ASSERT_TRUE(read.has_value());
  ASSERT_TRUE(read->ok());
  EXPECT_EQ(crc32c(data), crc32c(read->value().data));

  h.server().io_queue().drain();
  const auto qs = h.server().io_queue().stats();
  // The async acceptance check: with a thread pool no submitter ever
  // blocked in BlockDevice::read/write.
  EXPECT_EQ(0u, qs.inline_completions);
  EXPECT_GT(qs.submitted, 0u);
  EXPECT_EQ(qs.submitted, qs.completed);
}

TEST(AsyncPipelineTest, ConcurrentMissesJoinOneFill) {
  BulletHarness h;
  h.reboot(async_config(0));
  const Bytes data = testing::payload(30000, 11);
  auto cap = h.server().create(data, 2);
  ASSERT_TRUE(cap.ok());

  h.reboot(async_config(2));
  const std::uint64_t device_reads_before = h.disk(0).reads() + h.disk(1).reads();

  constexpr int kReaders = 8;
  Latch latch(kReaders);
  std::atomic<int> correct{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&] {
      h.server().read_pinned_async(cap.value(), [&](auto r) {
        if (r.ok() && crc32c(r.value().data) == crc32c(data)) ++correct;
        latch.count_down();
      });
    });
  }
  for (auto& t : threads) t.join();
  latch.wait();
  EXPECT_EQ(kReaders, correct.load());

  // Every reader either joined the one in-flight fill or hit the cache it
  // published: the device saw the file's blocks exactly once.
  const std::uint64_t device_reads =
      h.disk(0).reads() + h.disk(1).reads() - device_reads_before;
  EXPECT_LE(device_reads, 1u);
  EXPECT_EQ(0u, h.server().io_queue().stats().inline_completions);
}

TEST(AsyncPipelineTest, EraseDuringFillDefersAndStaysConsistent) {
  BulletHarness h;
  h.reboot(async_config(0));
  auto cap = h.server().create(testing::payload(40000, 3), 2);
  ASSERT_TRUE(cap.ok());

  h.reboot(async_config(2));
  // Race a miss-read against an erase of the same file, many rounds. The
  // read must deliver either the full correct bytes or no_such_object;
  // afterwards the free lists must balance (no leaked extent or inode).
  for (int round = 0; round < 20; ++round) {
    auto round_cap = h.server().create(testing::payload(9000, 100 + round), 2);
    ASSERT_TRUE(round_cap.ok());
    h.reboot(async_config(2));  // cold cache, keep the pool

    Latch latch(1);
    std::atomic<bool> ok{false};
    h.server().read_pinned_async(round_cap.value(), [&](auto r) {
      ok = r.ok() ? crc32c(r.value().data) ==
                        crc32c(testing::payload(9000, 100 + round))
                  : r.code() == ErrorCode::no_such_object;
      latch.count_down();
    });
    (void)h.server().erase(round_cap.value());
    latch.wait();
    EXPECT_TRUE(ok.load()) << "round " << round;
    h.server().io_queue().drain();
    EXPECT_EQ(0u, h.server().check_consistency().repairs());
  }
}

// The big one: creates, cache-miss reads, deletes, and incremental
// compaction all interleaved through the completion pool, with pinned
// spans held across compaction steps.
TEST(AsyncPipelineTest, StormWithIncrementalCompaction) {
  BulletHarness::Options options;
  options.disk_blocks = 1 << 14;  // 8 MB per replica
  options.inode_slots = 2048;
  BulletHarness h(options);
  auto config = async_config(3);
  h.reboot(config);
  BulletServer& server = h.server();

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 120;
  std::atomic<int> failures{0};
  std::atomic<bool> stop_compactor{false};

  // Dedicated compactor: one bounded step at a time, forever — traffic
  // interleaves between the lock holds.
  std::thread compactor([&] {
    while (!stop_compactor.load(std::memory_order_relaxed)) {
      const auto step = server.compact_step(16);
      if (!step.ok()) ++failures;
    }
  });

  auto worker = [&](int thread_id) {
    Rng rng(static_cast<std::uint64_t>(thread_id) * 977 + 13);
    std::vector<std::pair<Capability, std::uint32_t>> mine;
    std::vector<BulletServer::PinnedFile> pinned;  // held across compaction
    std::vector<std::uint32_t> pinned_crcs;
    for (int op = 0; op < kOpsPerThread; ++op) {
      const std::uint64_t dice = rng.next_below(100);
      if (mine.empty() || dice < 40) {
        Bytes data(rng.next_range(1, 12000));
        rng.fill(data);
        const std::uint32_t crc = crc32c(data);
        Latch latch(1);
        std::optional<Result<Capability>> created;
        server.create_async(data, 1, [&](Result<Capability> cap) {
          created = std::move(cap);
          latch.count_down();
        });
        latch.wait();
        if (!created->ok()) {
          if (created->code() != ErrorCode::no_space) ++failures;
          continue;
        }
        mine.emplace_back(created->value(), crc);
      } else if (dice < 80) {
        const auto& [cap, crc] = mine[rng.next_below(mine.size())];
        Latch latch(1);
        std::optional<Result<BulletServer::PinnedFile>> read;
        server.read_pinned_async(cap, [&](auto r) {
          read = std::move(r);
          latch.count_down();
        });
        latch.wait();
        if (!read->ok() || crc32c(read->value().data) != crc) {
          ++failures;
        } else if (pinned.size() < 8) {
          // Park the pin: compaction must treat it as immobile.
          pinned.push_back(std::move(read->value()));
          pinned_crcs.push_back(crc);
        }
      } else {
        const auto pick = rng.next_below(mine.size());
        if (!server.erase(mine[pick].first).ok()) ++failures;
        mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    // Every span pinned along the way is still byte-identical, no matter
    // how many compaction steps ran since.
    for (std::size_t i = 0; i < pinned.size(); ++i) {
      if (crc32c(pinned[i].data) != pinned_crcs[i]) ++failures;
    }
    pinned.clear();
    // And everything this thread still owns reads back correct.
    for (const auto& [cap, crc] : mine) {
      Latch latch(1);
      std::optional<Result<BulletServer::PinnedFile>> read;
      server.read_pinned_async(cap, [&](auto r) {
        read = std::move(r);
        latch.count_down();
      });
      latch.wait();
      if (!read->ok() || crc32c(read->value().data) != crc) ++failures;
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();
  stop_compactor = true;
  compactor.join();
  server.io_queue().drain();

  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0u, server.check_consistency().repairs());
  const auto stats = server.stats();
  EXPECT_GT(stats.compact_steps, 0u);
  EXPECT_EQ(0u, server.io_queue().stats().inline_completions);
  EXPECT_EQ(0u, server.io_queue().stats().inflight);
}

// The same guarantees over the wire: UDP worker pool + completion pool.
// Each client thread issues a dependent request stream on one connection;
// any cross-request reply mixup or lost continuation shows up as a CRC
// mismatch or timeout. kCompactDisk runs concurrently as an incremental
// background pass.
TEST(AsyncPipelineTest, UdpWorkerPoolWithParkedContinuations) {
  BulletHarness::Options options;
  options.disk_blocks = 1 << 14;
  options.inode_slots = 2048;
  BulletHarness h(options);
  auto config = async_config(2);
  config.cache_bytes = 64 << 10;  // small cache: plenty of parked misses
  h.reboot(config);

  rpc::UdpServerOptions server_options;
  server_options.workers = 4;
  auto udp = rpc::UdpServer::start(server_options);
  ASSERT_TRUE(udp.ok());
  ASSERT_OK(udp.value()->register_service(&h.server()));
  h.server().attach_io_counters(&udp.value()->io_counters());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50;
  std::atomic<int> failures{0};

  auto client_thread = [&](int thread_id) {
    rpc::UdpClientOptions client_options;
    client_options.server_udp_port = udp.value()->port();
    client_options.timeout_ms = 2000;
    auto transport = rpc::UdpTransport::connect(client_options);
    if (!transport.ok()) {
      ++failures;
      return;
    }
    BulletClient client(transport.value().get(),
                        h.server().super_capability());
    Rng rng(static_cast<std::uint64_t>(thread_id) * 31 + 5);
    std::vector<std::pair<Capability, std::uint32_t>> mine;
    for (int op = 0; op < kOpsPerThread; ++op) {
      const std::uint64_t dice = rng.next_below(100);
      if (mine.empty() || dice < 40) {
        Bytes data(rng.next_range(1, 10000));
        rng.fill(data);
        auto cap = client.create(data, 1);
        if (!cap.ok()) {
          ++failures;
          continue;
        }
        mine.emplace_back(cap.value(), crc32c(data));
      } else if (dice < 70) {
        const auto& [cap, crc] = mine[rng.next_below(mine.size())];
        auto data = client.read(cap);
        if (!data.ok() || crc32c(data.value()) != crc) ++failures;
      } else if (dice < 80) {
        // Admin-driven incremental compaction, concurrent with traffic.
        if (!client.compact_disk().ok()) ++failures;
      } else {
        const auto pick = rng.next_below(mine.size());
        if (!client.erase(mine[pick].first).ok()) ++failures;
        mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    for (const auto& [cap, crc] : mine) {
      auto data = client.read(cap);
      if (!data.ok() || crc32c(data.value()) != crc) ++failures;
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(client_thread, t);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(0, failures.load());
  h.server().io_queue().drain();
  EXPECT_EQ(0u, h.server().check_consistency().repairs());
  // No UDP worker ever blocked in the device on a cache-miss path.
  EXPECT_EQ(0u, h.server().io_queue().stats().inline_completions);
  udp.value()->stop();
}

}  // namespace
}  // namespace bullet
