// Crash-point sweep harness: run a fixed create/delete/compact workload
// against a mirror of FaultDisks that "crash" at a chosen write index, then
// reboot a fresh server from the surviving images and check the durability
// contract:
//
//   * every create acked at pfactor >= 1 reads back bit-exact (CRC),
//   * every acked delete stays deleted,
//   * fsck finds nothing to repair (no overlaps, no bad bounds),
//   * the free list equals a fresh scan of the inode table,
//   * after the repair boot, the replicas are identical again.
//
// Torn writes are swept at 16-byte granularity — one on-disk inode. The
// inode write is assumed atomic (the analogue of the sector-atomicity
// assumption in eXplode/CrashMonkey-style checkers): the 16-byte record is
// never split across sectors, and a tear *between* inodes of a block is
// covered. Sub-inode tears of the compaction path are fundamentally
// ambiguous — a half-updated first_block is indistinguishable from a valid
// pointer — which is exactly why the format keeps each inode inside one
// aligned 16-byte cell (see DESIGN.md, "Fault model").
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "bullet/server.h"
#include "common/crc.h"
#include "disk/fault_disk.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "tests/test_util.h"

namespace bullet::testing {

class CrashHarness {
 public:
  struct Options {
    std::uint64_t block_size = 512;
    std::uint64_t disk_blocks = 1024;
    std::uint32_t inode_slots = 64;
    std::uint64_t cache_bytes = 64 << 10;
    int replicas = 2;
  };

  CrashHarness() : CrashHarness(Options{}) {}
  explicit CrashHarness(Options options) : options_(options) {}

  // Run the workload with a crash scheduled at global write index
  // `crash_at` (CrashPlan::kNeverCrash = run to completion). Returns the
  // number of writes the run issued before stopping.
  std::uint64_t run(std::uint64_t crash_at, CrashPlan::TearMode mode,
                    std::uint64_t torn_align) {
    records_.clear();
    slots_.clear();
    server_.reset();
    mirror_.reset();
    fault_disks_.clear();
    disks_.clear();

    for (int i = 0; i < options_.replicas; ++i) {
      disks_.push_back(std::make_unique<MemDisk>(options_.block_size,
                                                 options_.disk_blocks));
    }
    EXPECT_OK(BulletServer::format(*disks_.front(), options_.inode_slots));
    for (int i = 1; i < options_.replicas; ++i) {
      EXPECT_OK(disks_[static_cast<std::size_t>(i)]->restore(
          disks_.front()->snapshot()));
    }

    // One plan shared by every replica: `crash_at` indexes the interleaved
    // write stream the server issues, and once it trips, every replica is
    // gone — no post-crash ack is possible.
    plan_ = std::make_shared<CrashPlan>();
    plan_->crash_at = crash_at;
    plan_->mode = mode;
    plan_->torn_align = torn_align;
    plan_->seed = 0xC4A54ull ^ crash_at;
    std::vector<BlockDevice*> replicas;
    for (auto& d : disks_) {
      fault_disks_.push_back(std::make_unique<FaultDisk>(d.get()));
      fault_disks_.back()->set_crash_plan(plan_);
      replicas.push_back(fault_disks_.back().get());
    }
    auto mirror = MirroredDisk::create(std::move(replicas));
    EXPECT_OK(status_of(mirror));
    mirror_ = std::make_unique<MirroredDisk>(std::move(mirror).value());

    BulletConfig config;
    config.cache_bytes = options_.cache_bytes;
    auto server = BulletServer::start(mirror_.get(), config);
    if (server.ok()) {
      server_ = std::move(server).value();
      workload();
    }
    // else: formatting is clean, so boot can only fail if crash_at hits the
    // (rare) boot-time writes; nothing was acked, nothing to record.
    return plan_->writes_seen;
  }

  // Reboot from the raw images (the crash is over; the hardware is fine)
  // and check every durability invariant.
  void verify_recovery() {
    server_.reset();
    mirror_.reset();
    std::vector<BlockDevice*> replicas;
    for (auto& d : disks_) replicas.push_back(d.get());
    auto mirror = MirroredDisk::create(std::move(replicas));
    ASSERT_OK(status_of(mirror));
    mirror_ = std::make_unique<MirroredDisk>(std::move(mirror).value());
    BulletConfig config;
    config.cache_bytes = options_.cache_bytes;
    auto booted = BulletServer::start(mirror_.get(), config);
    ASSERT_OK(status_of(booted));
    server_ = std::move(booted).value();

    // Nothing to repair: the crash never leaves overlapping or
    // out-of-bounds inodes behind.
    EXPECT_EQ(0u, server_->boot_report().repairs())
        << "boot fsck had to repair inodes";
    const wire::FsckReport now = server_->check_consistency();
    EXPECT_EQ(0u, now.cleared_overlaps);
    EXPECT_EQ(0u, now.cleared_bad_bounds);

    // Acked creates read back bit-exact; acked deletes stay deleted.
    for (const Record& r : records_) {
      auto data = server_->read(r.cap);
      if (r.delete_acked) {
        EXPECT_FALSE(data.ok()) << "acked delete resurrected";
        continue;
      }
      if (!r.delete_attempted) {
        // An acked create must never be lost.
        ASSERT_OK(status_of(data));
      }
      // A delete that was attempted but not acked may land either way;
      // whatever survives must still be the original bytes.
      if (data.ok()) {
        EXPECT_EQ(r.size, data.value().size());
        EXPECT_EQ(r.crc, crc32c(data.value()));
      }
    }

    // The free list equals a fresh scan of the inode table.
    const DiskLayout& layout = server_->layout();
    ExtentAllocator expected(layout.data_start_block(), layout.data_blocks());
    for (const auto& object : server_->list_objects()) {
      const std::uint64_t blocks = layout.blocks_for(object.size_bytes);
      if (blocks > 0) ASSERT_OK(expected.reserve(object.first_block, blocks));
    }
    EXPECT_EQ(expected.holes(), server_->disk_free().holes());

    // The repair boot healed all divergence: the replicas are identical
    // again (the paper's invariant).
    server_.reset();
    mirror_.reset();
    std::vector<BlockDevice*> again;
    for (auto& d : disks_) again.push_back(d.get());
    auto remirror = MirroredDisk::create(std::move(again));
    ASSERT_OK(status_of(remirror));
    auto scrub = remirror.value().scrub(/*repair=*/false);
    ASSERT_OK(status_of(scrub));
    EXPECT_EQ(0u, scrub.value().mismatched_blocks)
        << "replicas still diverged after the repair boot";
  }

 private:
  struct Record {
    Capability cap;
    std::uint32_t crc = 0;
    std::uint32_t size = 0;
    bool delete_attempted = false;
    bool delete_acked = false;
  };

  // Fixed workload: create/delete traffic shaped so compaction performs
  // both a disjoint slide and two overlapping (staged) slides, plus
  // post-compact allocation into the reclaimed space.
  void workload() {
    create(0, 2000, 2);
    create(1, 700, 1);
    create(2, 2560, 2);
    create(3, 300, 1);
    create(4, 3000, 2);
    erase(1);
    erase(0);
    create(5, 900, 2);
    (void)server_->compact_disk();  // may fail mid-crash; verified after
    create(6, 1200, 1);
    erase(3);
    create(7, 2500, 2);
  }

  void create(std::uint32_t slot, std::uint32_t bytes, int pfactor) {
    pfactor = std::min(pfactor, options_.replicas);
    const Bytes data = payload(bytes, 0xF00Dull + slot);
    auto cap = server_->create(data, pfactor);
    if (!cap.ok()) return;  // not acked: the crash got there first
    Record r;
    r.cap = cap.value();
    r.crc = crc32c(data);
    r.size = bytes;
    slots_[slot] = records_.size();
    records_.push_back(r);
  }

  void erase(std::uint32_t slot) {
    const auto it = slots_.find(slot);
    if (it == slots_.end()) return;  // the create never acked
    Record& r = records_[it->second];
    r.delete_attempted = true;
    if (server_->erase(r.cap).ok()) r.delete_acked = true;
  }

  Options options_;
  std::vector<std::unique_ptr<MemDisk>> disks_;
  std::vector<std::unique_ptr<FaultDisk>> fault_disks_;
  std::shared_ptr<CrashPlan> plan_;
  std::unique_ptr<MirroredDisk> mirror_;
  std::unique_ptr<BulletServer> server_;
  std::vector<Record> records_;
  std::map<std::uint32_t, std::size_t> slots_;
};

}  // namespace bullet::testing
