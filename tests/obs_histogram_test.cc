// Log-linear histogram unit tests: bucket geometry, merge algebra, quantile
// behavior, and a shadow-model property test against a sorted-vector oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "obs/histogram.h"

namespace bullet::obs {
namespace {

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < kHistSubBuckets; ++v) {
    const int b = histogram_bucket(v);
    EXPECT_EQ(static_cast<int>(v), b);
    EXPECT_EQ(v, histogram_bucket_floor(b));
    EXPECT_EQ(v, histogram_bucket_ceiling(b));
  }
}

TEST(HistogramBuckets, EveryValueLandsBetweenFloorAndCeiling) {
  Rng rng(42);
  std::vector<std::uint64_t> samples;
  for (int shift = 0; shift < 64; ++shift) {
    const std::uint64_t p = std::uint64_t{1} << shift;
    samples.push_back(p);
    samples.push_back(p - 1);
    samples.push_back(p + 1);
  }
  for (int i = 0; i < 10000; ++i) {
    samples.push_back(rng.next() >> (i % 64));
  }
  samples.push_back(~std::uint64_t{0});
  for (const std::uint64_t v : samples) {
    const int b = histogram_bucket(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, kHistBuckets);
    EXPECT_LE(histogram_bucket_floor(b), v);
    EXPECT_GE(histogram_bucket_ceiling(b), v);
  }
}

TEST(HistogramBuckets, IndexIsMonotoneInValue) {
  // Across bucket boundaries: floor(i) maps back to i, and consecutive
  // buckets cover adjacent, non-overlapping ranges.
  for (int i = 0; i < kHistBuckets - 1; ++i) {
    EXPECT_EQ(i, histogram_bucket(histogram_bucket_floor(i)));
    EXPECT_EQ(i, histogram_bucket(histogram_bucket_ceiling(i)));
    EXPECT_EQ(histogram_bucket_ceiling(i) + 1, histogram_bucket_floor(i + 1));
  }
}

TEST(HistogramBuckets, RelativeErrorBounded) {
  // The log-linear promise: ceiling/floor within a bucket differ by at
  // most a factor of 1 + 1/kHistSubBuckets (12.5%) for values >= 8.
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = (rng.next() >> (i % 56)) | kHistSubBuckets;
    const int b = histogram_bucket(v);
    const double ceiling = static_cast<double>(histogram_bucket_ceiling(b));
    EXPECT_LE(ceiling, static_cast<double>(v) * 1.125 + 1.0);
  }
}

HistogramSnapshot make_random(Rng& rng, int n, int max_shift) {
  HistogramSnapshot h;
  for (int i = 0; i < n; ++i) h.add(rng.next() >> rng.next_below(max_shift));
  return h;
}

TEST(HistogramMerge, AssociativeAndCommutative) {
  Rng rng(99);
  const HistogramSnapshot a = make_random(rng, 500, 60);
  const HistogramSnapshot b = make_random(rng, 300, 48);
  const HistogramSnapshot c = make_random(rng, 700, 32);

  HistogramSnapshot ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  HistogramSnapshot bc = b;
  bc.merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.merge(bc);
  HistogramSnapshot cba = c;
  cba.merge(b);
  cba.merge(a);

  for (const auto* m : {&a_bc, &cba}) {
    EXPECT_EQ(ab_c.count(), m->count());
    EXPECT_EQ(ab_c.sum(), m->sum());
    EXPECT_EQ(ab_c.max(), m->max());
    for (int i = 0; i < kHistBuckets; ++i) {
      ASSERT_EQ(ab_c.bucket_count(i), m->bucket_count(i)) << "bucket " << i;
    }
    for (double q = 0.0; q <= 1.0; q += 0.05) {
      EXPECT_EQ(ab_c.quantile(q), m->quantile(q)) << "q=" << q;
    }
  }
}

TEST(HistogramQuantile, MonotoneInQ) {
  Rng rng(123);
  const HistogramSnapshot h = make_random(rng, 2000, 52);
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_EQ(h.max(), h.quantile(1.0));
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  const HistogramSnapshot h;
  EXPECT_EQ(0u, h.count());
  EXPECT_EQ(0u, h.quantile(0.5));
  EXPECT_EQ(0.0, h.mean());
}

TEST(HistogramRecorder, SnapshotMatchesExactSumAndMax) {
  LatencyHistogram h;
  Rng rng(5);
  std::uint64_t sum = 0, max = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next() >> 40;
    h.record(v);
    sum += v;
    max = std::max(max, v);
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(1000u, snap.count());
  EXPECT_EQ(sum, snap.sum());
  EXPECT_EQ(max, snap.max());
  EXPECT_EQ(max, snap.quantile(1.0));
}

// Shadow model: the histogram's quantile must bracket the sorted-vector
// oracle — never below it, and above by at most one bucket width (12.5%
// relative, +8 absolute for the sub-linear buckets).
TEST(HistogramQuantile, TracksSortedVectorOracle) {
  Rng rng(2026);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint64_t> values;
    HistogramSnapshot h;
    const int n = 1 + static_cast<int>(rng.next_below(3000));
    const int shift = static_cast<int>(rng.next_below(56));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t v = rng.next() >> shift;
      values.push_back(v);
      h.add(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99,
                           0.999, 1.0}) {
      std::size_t rank = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(values.size())));
      if (rank == 0) rank = 1;
      const std::uint64_t oracle = values[rank - 1];
      const std::uint64_t estimate = h.quantile(q);
      EXPECT_GE(estimate, oracle) << "q=" << q << " n=" << n;
      EXPECT_LE(static_cast<double>(estimate),
                static_cast<double>(oracle) * 1.125 + 8.0)
          << "q=" << q << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace bullet::obs
