// The UDP server's retransmit-suppression cache: bounded by entries AND by
// bytes, FIFO eviction, newest entry always retained.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "rpc/udp_transport.h"
#include "tests/test_util.h"

namespace bullet::rpc {
namespace {

std::shared_ptr<const Bytes> reply_of(std::size_t n, std::uint8_t fill) {
  return std::make_shared<const Bytes>(Bytes(n, fill));
}

TEST(ReplyCacheTest, FindReturnsInserted) {
  ReplyCache cache(/*max_entries=*/4, /*max_bytes=*/1 << 20);
  cache.insert(1, 100, reply_of(10, 0xAA));
  const auto hit = cache.find(1, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 10u);
  EXPECT_EQ((*hit)[0], 0xAA);
  EXPECT_EQ(cache.find(1, 101), nullptr);
  EXPECT_EQ(cache.find(2, 100), nullptr);
}

TEST(ReplyCacheTest, EntryBoundEvictsOldestFirst) {
  ReplyCache cache(/*max_entries=*/3, /*max_bytes=*/1 << 20);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    cache.insert(7, id, reply_of(8, static_cast<std::uint8_t>(id)));
  }
  // FIFO: 1 and 2 evicted, 3..5 retained.
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.find(7, 1), nullptr);
  EXPECT_EQ(cache.find(7, 2), nullptr);
  EXPECT_NE(cache.find(7, 3), nullptr);
  EXPECT_NE(cache.find(7, 5), nullptr);
}

TEST(ReplyCacheTest, ByteBoundEvictsBeforeEntryBound) {
  // Entry bound alone would admit 128 replies; 1 KB of budget admits four
  // 256-byte replies at most. This is the regression the bound exists for:
  // large borrowed-payload replies must not accumulate unbounded bytes.
  ReplyCache cache(/*max_entries=*/128, /*max_bytes=*/1024);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    cache.insert(7, id, reply_of(256, static_cast<std::uint8_t>(id)));
  }
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.bytes(), 1024u);
  EXPECT_EQ(cache.evictions(), 6u);
  EXPECT_EQ(cache.find(7, 6), nullptr);
  EXPECT_NE(cache.find(7, 7), nullptr);
  EXPECT_NE(cache.find(7, 10), nullptr);
}

TEST(ReplyCacheTest, OversizedNewestEntryIsKept) {
  // A single reply larger than the whole byte budget still caches: the
  // server must be able to answer the retransmit of the request it just
  // executed, or at-most-once degrades to at-least-once under loss.
  ReplyCache cache(/*max_entries=*/8, /*max_bytes=*/100);
  cache.insert(1, 1, reply_of(50, 1));
  cache.insert(1, 2, reply_of(500, 2));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.find(1, 1), nullptr);
  ASSERT_NE(cache.find(1, 2), nullptr);
  EXPECT_EQ(cache.find(1, 2)->size(), 500u);
  // The next small insert evicts the oversized one.
  cache.insert(1, 3, reply_of(10, 3));
  EXPECT_EQ(cache.find(1, 2), nullptr);
  EXPECT_NE(cache.find(1, 3), nullptr);
  EXPECT_EQ(cache.bytes(), 10u);
}

TEST(ReplyCacheTest, DuplicateInsertIsIgnored) {
  ReplyCache cache(4, 1 << 20);
  cache.insert(1, 1, reply_of(10, 1));
  cache.insert(1, 1, reply_of(99, 2));  // retransmit raced with execution
  ASSERT_NE(cache.find(1, 1), nullptr);
  EXPECT_EQ(cache.find(1, 1)->size(), 10u);
  EXPECT_EQ(cache.bytes(), 10u);
}

TEST(ReplyCacheTest, FoundReplySurvivesConcurrentEviction) {
  // find() hands out a shared_ptr; the bytes must stay valid even after
  // eviction drops the cache's own reference.
  ReplyCache cache(/*max_entries=*/1, /*max_bytes=*/1 << 20);
  cache.insert(1, 1, reply_of(64, 0x5A));
  const auto held = cache.find(1, 1);
  ASSERT_NE(held, nullptr);
  cache.insert(1, 2, reply_of(64, 0xA5));  // evicts id 1
  EXPECT_EQ(cache.find(1, 1), nullptr);
  EXPECT_EQ(held->size(), 64u);
  EXPECT_EQ((*held)[63], 0x5A);
}

TEST(ReplyCacheTest, HeldEntriesSurviveEvictionChurn) {
  // The execute->reply window: the server holds (peer, id) while a request
  // runs, so a burst of shed-driven inserts from other clients can never
  // evict the reply between its insert and its first transmission.
  ReplyCache cache(/*max_entries=*/4, /*max_bytes=*/1 << 20);
  cache.hold(1, 1);
  cache.insert(1, 1, reply_of(10, 1));
  for (std::uint64_t id = 1; id <= 100; ++id) {
    cache.insert(2, id, reply_of(10, static_cast<std::uint8_t>(id)));
  }
  ASSERT_NE(cache.find(1, 1), nullptr) << "held entry evicted by churn";
  EXPECT_LE(cache.entries(), 4u);
  // Once released, the entry is ordinary FIFO fodder again.
  cache.release(1, 1);
  for (std::uint64_t id = 101; id <= 200; ++id) {
    cache.insert(2, id, reply_of(10, static_cast<std::uint8_t>(id)));
  }
  EXPECT_EQ(cache.find(1, 1), nullptr);
}

TEST(ReplyCacheTest, AllHeldEntriesExceedTheBoundTransiently) {
  // More in-flight requests than max_entries: every key is held, so
  // eviction cannot make room and the bound is exceeded until releases
  // drain — the documented trade for never re-executing a live request.
  ReplyCache cache(/*max_entries=*/2, /*max_bytes=*/1 << 20);
  for (std::uint64_t id = 1; id <= 3; ++id) cache.hold(1, id);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    cache.insert(1, id, reply_of(8, static_cast<std::uint8_t>(id)));
  }
  EXPECT_EQ(cache.entries(), 3u);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_NE(cache.find(1, id), nullptr) << id;
  }
  for (std::uint64_t id = 1; id <= 3; ++id) cache.release(1, id);
  cache.insert(1, 4, reply_of(8, 4));  // next insert re-establishes bounds
  EXPECT_LE(cache.entries(), 2u);
  EXPECT_NE(cache.find(1, 4), nullptr);
}

TEST(ReplyCacheTest, HoldIsIdempotentAndUnknownReleaseIsHarmless) {
  ReplyCache cache(2, 1 << 20);
  cache.hold(1, 1);
  cache.hold(1, 1);
  cache.release(9, 9);  // never held
  cache.insert(1, 1, reply_of(8, 1));
  cache.release(1, 1);
  for (std::uint64_t id = 2; id <= 10; ++id) {
    cache.insert(1, id, reply_of(8, static_cast<std::uint8_t>(id)));
  }
  EXPECT_EQ(cache.find(1, 1), nullptr);  // a single release fully unpins
  EXPECT_LE(cache.entries(), 2u);
}

TEST(ReplyCacheTest, ConcurrentInsertFindIsSafe) {
  ReplyCache cache(/*max_entries=*/16, /*max_bytes=*/4096);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        cache.insert(static_cast<std::uint64_t>(t), i,
                     reply_of(64, static_cast<std::uint8_t>(i)));
        const auto hit = cache.find(static_cast<std::uint64_t>(t), i);
        if (hit != nullptr) {
          // Entry may already be evicted by other threads' inserts, but a
          // found reply is always intact.
          EXPECT_EQ(hit->size(), 64u);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.entries(), 16u);
  EXPECT_LE(cache.bytes(), 4096u + 64u);
}

}  // namespace
}  // namespace bullet::rpc
