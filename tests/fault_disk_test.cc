// FaultDisk unit tests, and the mirror behaviours it exists to exercise:
// per-block read-repair, the error budget, and scrub healing torn writes
// and silent bit-rot.
#include <gtest/gtest.h>

#include <memory>

#include "bullet/server.h"
#include "common/crc.h"
#include "disk/fault_disk.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::payload;
using testing::status_of;

class FaultDiskTest : public ::testing::Test {
 protected:
  FaultDiskTest() : inner_(512, 64), fault_(&inner_) {}
  MemDisk inner_;
  FaultDisk fault_;
};

TEST_F(FaultDiskTest, PassesThroughWhenNoFaults) {
  ASSERT_OK(fault_.write(3, payload(1024, 1)));
  Bytes out(1024);
  ASSERT_OK(fault_.read(3, out));
  EXPECT_TRUE(equal(payload(1024, 1), out));
  EXPECT_EQ(0u, fault_.injected_read_errors());
  EXPECT_EQ(0u, fault_.injected_write_errors());
}

TEST_F(FaultDiskTest, TransientReadErrorTripsOnce) {
  ASSERT_OK(fault_.write(5, payload(512, 2)));
  fault_.inject_read_error(5, /*transient=*/true);
  Bytes out(512);
  EXPECT_CODE(io_error, fault_.read(5, out));
  ASSERT_OK(fault_.read(5, out));  // consumed
  EXPECT_TRUE(equal(payload(512, 2), out));
  EXPECT_EQ(1u, fault_.injected_read_errors());
}

TEST_F(FaultDiskTest, PermanentReadErrorKeepsTripping) {
  fault_.inject_read_error(5, /*transient=*/false);
  Bytes out(512);
  EXPECT_CODE(io_error, fault_.read(5, out));
  EXPECT_CODE(io_error, fault_.read(5, out));
  EXPECT_EQ(2u, fault_.injected_read_errors());
  fault_.clear_faults();
  ASSERT_OK(fault_.read(5, out));
}

TEST_F(FaultDiskTest, WriteErrorsTransientAndPermanent) {
  fault_.inject_write_error(7, /*transient=*/true);
  EXPECT_CODE(io_error, fault_.write(7, payload(512, 3)));
  ASSERT_OK(fault_.write(7, payload(512, 3)));  // consumed
  fault_.inject_write_error(8, /*transient=*/false);
  EXPECT_CODE(io_error, fault_.write(8, payload(512, 4)));
  EXPECT_CODE(io_error, fault_.write(8, payload(512, 4)));
  EXPECT_EQ(3u, fault_.injected_write_errors());
}

TEST_F(FaultDiskTest, MultiBlockSpanHitsPerBlockFault) {
  // A fault on any block of the span fails the whole transfer.
  fault_.inject_read_error(11, /*transient=*/false);
  Bytes out(4 * 512);
  EXPECT_CODE(io_error, fault_.read(9, out));
}

TEST_F(FaultDiskTest, LatentErrorTripsOnReadAndClearsOnRewrite) {
  ASSERT_OK(fault_.write(6, payload(512, 5)));
  fault_.arm_latent_error(6);
  Bytes out(512);
  EXPECT_CODE(io_error, fault_.read(6, out));
  EXPECT_CODE(io_error, fault_.read(6, out));  // still latent
  EXPECT_EQ(2u, fault_.latent_trips());
  ASSERT_OK(fault_.write(6, payload(512, 6)));  // rewrite clears it
  ASSERT_OK(fault_.read(6, out));
  EXPECT_TRUE(equal(payload(512, 6), out));
}

TEST_F(FaultDiskTest, BitRotIsSilent) {
  ASSERT_OK(fault_.write(4, payload(512, 7)));
  ASSERT_OK(fault_.corrupt_block(4, 100, 0x40));
  Bytes out(512);
  ASSERT_OK(fault_.read(4, out));  // no error surfaces
  EXPECT_FALSE(equal(payload(512, 7), out));
  out[100] ^= 0x40;
  EXPECT_TRUE(equal(payload(512, 7), out));
}

TEST_F(FaultDiskTest, CleanCrashDropsTheWholeWrite) {
  auto plan = std::make_shared<CrashPlan>();
  plan->crash_at = 1;
  fault_.set_crash_plan(plan);
  ASSERT_OK(fault_.write(0, payload(512, 1)));       // write 0
  EXPECT_CODE(io_error, fault_.write(1, payload(512, 2)));  // crash
  EXPECT_TRUE(plan->crashed);
  Bytes out(512);
  EXPECT_CODE(io_error, fault_.read(0, out));  // dead after the crash
  EXPECT_CODE(io_error, fault_.write(2, payload(512, 3)));
  EXPECT_CODE(io_error, fault_.flush());
  // The crashed write left no bytes behind.
  ASSERT_OK(inner_.read(1, out));
  EXPECT_TRUE(equal(Bytes(512, 0), out));
}

TEST_F(FaultDiskTest, TornPrefixKeepsWholeBlocksOnly) {
  auto plan = std::make_shared<CrashPlan>();
  plan->crash_at = 0;
  plan->mode = CrashPlan::TearMode::torn_prefix;
  plan->seed = 7;
  fault_.set_crash_plan(plan);
  EXPECT_CODE(io_error, fault_.write(0, payload(4 * 512, 9)));
  // Every block is either fully new or fully old (zero).
  const Bytes want = payload(4 * 512, 9);
  Bytes out(512);
  for (std::uint64_t b = 0; b < 4; ++b) {
    ASSERT_OK(inner_.read(b, out));
    const ByteSpan fresh(want.data() + b * 512, 512);
    EXPECT_TRUE(equal(fresh, out) || equal(Bytes(512, 0), out))
        << "block " << b << " is torn mid-block";
  }
}

TEST_F(FaultDiskTest, TornBytesRespectsAlignment) {
  auto plan = std::make_shared<CrashPlan>();
  plan->crash_at = 0;
  plan->mode = CrashPlan::TearMode::torn_bytes;
  plan->torn_align = 16;
  plan->seed = 3;
  fault_.set_crash_plan(plan);
  EXPECT_CODE(io_error, fault_.write(0, payload(2 * 512, 11)));
  // The persisted image is a prefix of the new bytes at 16-byte
  // granularity, with old (zero) bytes after the tear point.
  const Bytes want = payload(2 * 512, 11);
  Bytes got(2 * 512);
  ASSERT_OK(inner_.read(0, got));
  std::size_t tear = 0;
  while (tear < got.size() && got[tear] == want[tear]) ++tear;
  EXPECT_EQ(0u, tear % 16) << "tear point not 16-byte aligned";
  for (std::size_t i = tear; i < got.size(); ++i) {
    ASSERT_EQ(0, got[i]) << "stale non-zero byte after the tear";
  }
}

TEST_F(FaultDiskTest, SharedPlanCountsWritesAcrossDisks) {
  MemDisk inner2(512, 64);
  FaultDisk fault2(&inner2);
  auto plan = std::make_shared<CrashPlan>();
  plan->crash_at = 2;
  fault_.set_crash_plan(plan);
  fault2.set_crash_plan(plan);
  ASSERT_OK(fault_.write(0, payload(512, 1)));   // write 0
  ASSERT_OK(fault2.write(0, payload(512, 1)));   // write 1
  EXPECT_CODE(io_error, fault_.write(1, payload(512, 2)));  // write 2: crash
  // The other disk attached to the plan is dead too.
  EXPECT_CODE(io_error, fault2.write(1, payload(512, 2)));
  Bytes out(512);
  EXPECT_CODE(io_error, fault2.read(0, out));
}

TEST_F(FaultDiskTest, ProbabilisticLatentArming) {
  fault_.arm_latent_on_write(/*one_in=*/1, /*seed=*/42);  // arm every write
  ASSERT_OK(fault_.write(9, payload(512, 1)));
  Bytes out(512);
  EXPECT_CODE(io_error, fault_.read(9, out));
  EXPECT_EQ(1u, fault_.latent_trips());
}

// --- mirror behaviours under injected faults ---------------------------

class FaultMirrorTest : public ::testing::Test {
 protected:
  FaultMirrorTest()
      : a_(512, 64), b_(512, 64), fa_(&a_), fb_(&b_) {
    auto mirror = MirroredDisk::create({&fa_, &fb_});
    EXPECT_TRUE(mirror.ok());
    mirror_ = std::make_unique<MirroredDisk>(std::move(mirror).value());
  }
  MemDisk a_, b_;
  FaultDisk fa_, fb_;
  std::unique_ptr<MirroredDisk> mirror_;
};

TEST_F(FaultMirrorTest, ReadRepairHealsLatentErrorWithoutDemotion) {
  ASSERT_OK(mirror_->write(10, payload(3 * 512, 1)));
  fa_.arm_latent_error(11);  // middle block of the run rots on replica 0
  Bytes out(3 * 512);
  ASSERT_OK(mirror_->read(10, out));
  EXPECT_TRUE(equal(payload(3 * 512, 1), out));
  // The peer served block 11 and the bad copy was rewritten in place.
  EXPECT_EQ(1u, mirror_->health().read_repairs);
  EXPECT_EQ(0u, mirror_->health().failovers);
  EXPECT_EQ(2, mirror_->healthy_count());
  // The rewrite cleared the latent error: replica 0 serves it again.
  Bytes direct(512);
  ASSERT_OK(fa_.read(11, direct));
  EXPECT_TRUE(equal(ByteSpan(out.data() + 512, 512), direct));
}

TEST_F(FaultMirrorTest, TransientErrorAbsorbedByBlockRetry) {
  ASSERT_OK(mirror_->write(5, payload(512, 2)));
  fa_.inject_read_error(5, /*transient=*/true);
  Bytes out(512);
  ASSERT_OK(mirror_->read(5, out));
  EXPECT_TRUE(equal(payload(512, 2), out));
  // The bulk-read failure consumed the transient fault; the per-block
  // retry on the same replica succeeded, so no peer detour was needed.
  EXPECT_EQ(0u, mirror_->health().read_repairs);
  EXPECT_EQ(0u, mirror_->health().failovers);
  EXPECT_EQ(2, mirror_->healthy_count());
  EXPECT_GE(mirror_->health().io_errors, 1u);
}

TEST_F(FaultMirrorTest, ErrorBudgetExhaustionDemotesReplica) {
  mirror_->set_error_budget(2);
  ASSERT_OK(mirror_->write(0, payload(4 * 512, 3)));
  Bytes out(512);
  for (std::uint64_t b = 0; b < 3; ++b) {
    fa_.arm_latent_error(b);
    // Peer serves it, write-back clears the latent fault, error charged.
    ASSERT_OK(mirror_->read(b, out));
  }
  EXPECT_EQ(3u, mirror_->replica_errors(0));
  EXPECT_FALSE(mirror_->is_healthy(0));  // 3 errors > budget of 2
  EXPECT_EQ(1u, mirror_->health().failovers);
  // Service continues from the survivor.
  ASSERT_OK(mirror_->read(3, out));
}

TEST_F(FaultMirrorTest, TransientWriteErrorAbsorbedByRetry) {
  fb_.inject_write_error(4, /*transient=*/true);
  ASSERT_OK(mirror_->write(4, payload(512, 4)));
  EXPECT_EQ(2, mirror_->healthy_count());  // retry succeeded, no demotion
  Bytes out(512);
  ASSERT_OK(b_.read(4, out));
  EXPECT_TRUE(equal(payload(512, 4), out));
}

TEST_F(FaultMirrorTest, PermanentWriteErrorDemotesReplica) {
  fb_.inject_write_error(4, /*transient=*/false);
  ASSERT_OK(mirror_->write(4, payload(512, 5)));
  EXPECT_FALSE(mirror_->is_healthy(1));
  EXPECT_EQ(1u, mirror_->health().failovers);
}

TEST_F(FaultMirrorTest, BackgroundWriteFailureIsCounted) {
  fb_.inject_write_error(6, /*transient=*/false);
  auto written = mirror_->write_partial(6, payload(512, 6), 1);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(1, written.value());
  ASSERT_OK(mirror_->write_remaining(6, payload(512, 6), 1));
  EXPECT_EQ(1u, mirror_->health().bg_write_failures);
  EXPECT_FALSE(mirror_->is_healthy(1));
}

TEST_F(FaultMirrorTest, ScrubRepairHealsTornWrite) {
  ASSERT_OK(mirror_->write(20, payload(2 * 512, 7)));
  // Replica 1 suffers a torn version of a later overwrite: only the first
  // block of the two-block update landed.
  const Bytes update = payload(2 * 512, 8);
  ASSERT_OK(a_.write(20, update));
  ASSERT_OK(b_.write(20, ByteSpan(update.data(), 512)));  // torn: 1 of 2
  auto report = mirror_->scrub(/*repair=*/true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(1u, report.value().mismatched_blocks);
  EXPECT_EQ(1u, report.value().repaired_blocks);
  Bytes out(2 * 512);
  ASSERT_OK(b_.read(20, out));
  EXPECT_TRUE(equal(update, out));
}

TEST_F(FaultMirrorTest, ScrubRepairHealsBitRot) {
  ASSERT_OK(mirror_->write(30, payload(512, 9)));
  ASSERT_OK(fb_.corrupt_block(30, 17, 0x01));  // silent single-bit flip
  auto report = mirror_->scrub(/*repair=*/true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(1u, report.value().mismatched_blocks);
  EXPECT_EQ(1u, report.value().repaired_blocks);
  Bytes out(512);
  ASSERT_OK(b_.read(30, out));
  EXPECT_TRUE(equal(payload(512, 9), out));
  // Clean after repair.
  report = mirror_->scrub(/*repair=*/false);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(0u, report.value().mismatched_blocks);
}

TEST_F(FaultMirrorTest, ScrubDemotesUnreadableReplicaAndContinues) {
  ASSERT_OK(mirror_->write(0, payload(512, 10)));
  fb_.inject_read_error(40, /*transient=*/false);
  auto report = mirror_->scrub(/*repair=*/false);
  ASSERT_TRUE(report.ok());  // the scrub itself succeeds
  EXPECT_FALSE(mirror_->is_healthy(1));
  EXPECT_EQ(1u, mirror_->health().failovers);
}

// --- the acceptance scenario: read-repair through the whole server ------

TEST(FaultServerTest, CacheMissReadServedViaReadRepairWithoutDemotion) {
  MemDisk a(512, 1024), b(512, 1024);
  ASSERT_OK(BulletServer::format(a, 64));
  ASSERT_OK(b.restore(a.snapshot()));
  FaultDisk fa(&a), fb(&b);
  auto mirror = MirroredDisk::create({&fa, &fb});
  ASSERT_TRUE(mirror.ok());
  MirroredDisk md = std::move(mirror).value();
  BulletConfig config;
  config.cache_bytes = 64 << 10;
  auto server = BulletServer::start(&md, config);
  ASSERT_OK(status_of(server));

  const Bytes data = payload(5000, 123);
  auto cap = server.value()->create(data, 2);
  ASSERT_OK(status_of(cap));

  // Evict the file from RAM by rebooting the server, then seed a latent
  // sector error in the middle of the file's extent on the main replica:
  // the cache-miss READ must detour to the peer for that one block.
  server.value().reset();
  auto mirror2 = MirroredDisk::create({&fa, &fb});
  ASSERT_TRUE(mirror2.ok());
  MirroredDisk md2 = std::move(mirror2).value();
  auto rebooted = BulletServer::start(&md2, config);
  ASSERT_OK(status_of(rebooted));
  const auto objects = rebooted.value()->list_objects();
  ASSERT_EQ(1u, objects.size());
  fa.arm_latent_error(objects[0].first_block + 3);

  auto read = rebooted.value()->read(cap.value());
  ASSERT_OK(status_of(read));
  EXPECT_EQ(data.size(), read.value().size());
  EXPECT_EQ(crc32c(data), crc32c(read.value()));

  const wire::ServerStats stats = rebooted.value()->stats();
  EXPECT_EQ(1u, stats.read_repairs);
  EXPECT_EQ(0u, stats.failovers);
  EXPECT_EQ(2u, stats.healthy_replicas);
  EXPECT_GE(stats.io_errors, 1u);

  // The repair rewrote the block: replica 0 serves the whole file again.
  Bytes direct(512);
  ASSERT_OK(fa.read(objects[0].first_block + 3, direct));
}

}  // namespace
}  // namespace bullet
