// The overload-control plane end to end: admission control at the UDP
// dispatch queue (BS_PUSHBACK for deadline-capable clients, silent drop for
// legacy ones), deadline propagation and expiry at dequeue, and the
// in-flight disk-fill bound at the Bullet service layer.
//
// The server-side scenarios use a GateService whose handler parks on a
// condition variable: with one worker the test controls exactly when the
// queue drains, so "queue full" is a constructed state, not a race to win.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>

#include "bullet/client.h"
#include "bullet/server.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "rpc/udp_transport.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::status_of;

// An rpc::Service whose handler blocks until the gate opens. Echoes the
// request body so callers can verify they got *their* reply (and not, say,
// a stale cached pushback — pushbacks must never enter the reply cache).
class GateService final : public rpc::Service {
 public:
  Port public_port() const noexcept override { return Port(0xB10C); }

  rpc::Reply handle(const rpc::Request& request) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++executing_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
      ++executed_;
    }
    return rpc::Reply::success(request.body);
  }

  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  // Block until `n` handler invocations have started.
  void wait_executing(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return executing_ >= n; });
  }

  int executed() {
    std::lock_guard<std::mutex> lock(mu_);
    return executed_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int executing_ = 0;
  int executed_ = 0;
};

rpc::Request gate_request(std::uint64_t tag, std::uint64_t deadline_us = 0) {
  rpc::Request request;
  request.target.port = Port(0xB10C);
  Writer w(8);
  w.u64(tag);
  request.body = std::move(w).take();
  request.deadline_us = deadline_us;
  return request;
}

class OverloadTest : public ::testing::Test {
 protected:
  void start_server(rpc::UdpServerOptions options) {
    options.workers = 1;  // one executing request; everything else queues
    auto server = rpc::UdpServer::start(options);
    ASSERT_TRUE(server.ok()) << server.error().to_string();
    udp_server_ = std::move(server).value();
    ASSERT_OK(udp_server_->register_service(&gate_));
  }

  std::unique_ptr<rpc::UdpTransport> connect(int timeout_ms,
                                             int max_attempts) {
    rpc::UdpClientOptions options;
    options.server_udp_port = udp_server_->port();
    options.timeout_ms = timeout_ms;
    options.max_attempts = max_attempts;
    options.max_timeout_ms = timeout_ms * 4;
    auto transport = rpc::UdpTransport::connect(options);
    EXPECT_TRUE(transport.ok());
    return std::move(transport).value();
  }

  // Spin until `cond` holds or ~5 s pass (never expected in a healthy run).
  template <typename F>
  static bool poll(F cond) {
    for (int i = 0; i < 5000; ++i) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  GateService gate_;
  std::unique_ptr<rpc::UdpServer> udp_server_;
};

TEST_F(OverloadTest, FullQueueShedsWithPushbackAndNothingExecutesTwice) {
  // One worker, one queue slot: with A executing and one request queued,
  // the next arrival is shed. A is a legacy client (no trailer); B and C
  // carry deadlines, so whichever of them finds the queue full gets an
  // explicit BS_PUSHBACK and retries on the server's advice — the
  // mixed-version deployment the wire format promises to keep working.
  rpc::UdpServerOptions options;
  options.max_queue = 1;
  options.shed_retry_ms = 5;
  start_server(options);

  auto ta = connect(/*timeout_ms=*/200, /*max_attempts=*/40);
  auto tb = connect(/*timeout_ms=*/100, /*max_attempts=*/100);
  auto tc = connect(/*timeout_ms=*/100, /*max_attempts=*/100);

  auto fa = std::async(std::launch::async,
                       [&] { return ta->call(gate_request(1)); });
  gate_.wait_executing(1);  // A owns the only worker

  constexpr std::uint64_t kBudgetUs = 10'000'000;
  auto fb = std::async(std::launch::async,
                       [&] { return tb->call(gate_request(2, kBudgetUs)); });
  auto fc = std::async(std::launch::async,
                       [&] { return tc->call(gate_request(3, kBudgetUs)); });

  // One of B/C occupies the queue slot; the other is shed with pushback
  // and keeps retrying (5 ms advised) until the gate opens.
  const auto& io = udp_server_->io_counters();
  ASSERT_TRUE(poll([&] {
    return io.shed_pushback.load(std::memory_order_relaxed) >= 1;
  }));
  gate_.open();

  auto ra = fa.get();
  auto rb = fb.get();
  auto rc = fc.get();
  ASSERT_TRUE(ra.ok()) << ra.error().to_string();
  ASSERT_TRUE(rb.ok()) << rb.error().to_string();
  ASSERT_TRUE(rc.ok()) << rc.error().to_string();
  EXPECT_EQ(ErrorCode::ok, ra.value().status);
  EXPECT_EQ(ErrorCode::ok, rb.value().status);
  EXPECT_EQ(ErrorCode::ok, rc.value().status);
  // Each caller got its own echo back: a pushback answered from the reply
  // cache would have pinned the shed client to retry_later forever.
  Reader b_payload(rb.value().body);
  Reader c_payload(rc.value().body);
  EXPECT_EQ(2u, b_payload.u64().value());
  EXPECT_EQ(3u, c_payload.u64().value());

  EXPECT_GE(io.shed_pushback.load(std::memory_order_relaxed), 1u);
  EXPECT_GE(tb->pushbacks() + tc->pushbacks(), 1u);
  // At-most-once held through the shed/retry churn.
  EXPECT_EQ(3, gate_.executed());
}

TEST_F(OverloadTest, LegacyClientsShedByDropFallBackToRetransmit) {
  // Same full-queue setup, but no client carries a deadline trailer: sheds
  // are silent drops, and the old timeout/backoff retransmit path must
  // carry every request to completion once the overload clears.
  rpc::UdpServerOptions options;
  options.max_queue = 1;
  options.shed_retry_ms = 5;
  start_server(options);

  auto ta = connect(/*timeout_ms=*/200, /*max_attempts=*/40);
  auto tb = connect(/*timeout_ms=*/25, /*max_attempts=*/60);
  auto tc = connect(/*timeout_ms=*/25, /*max_attempts=*/60);

  auto fa = std::async(std::launch::async,
                       [&] { return ta->call(gate_request(1)); });
  gate_.wait_executing(1);

  auto fb = std::async(std::launch::async,
                       [&] { return tb->call(gate_request(2)); });
  auto fc = std::async(std::launch::async,
                       [&] { return tc->call(gate_request(3)); });

  const auto& io = udp_server_->io_counters();
  ASSERT_TRUE(poll([&] {
    return io.shed_dropped.load(std::memory_order_relaxed) >= 1;
  }));
  gate_.open();

  auto ra = fa.get();
  auto rb = fb.get();
  auto rc = fc.get();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok()) << rb.error().to_string();
  ASSERT_TRUE(rc.ok()) << rc.error().to_string();
  EXPECT_EQ(ErrorCode::ok, rb.value().status);
  EXPECT_EQ(ErrorCode::ok, rc.value().status);

  EXPECT_GE(io.shed_dropped.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(0u, io.shed_pushback.load(std::memory_order_relaxed));
  // The shed client recovered by retransmitting, not by magic.
  EXPECT_GE(tb->retransmissions() + tc->retransmissions(), 1u);
  EXPECT_EQ(3, gate_.executed());
}

TEST_F(OverloadTest, ExpiredDeadlineIsDroppedAtDequeueWithoutExecuting) {
  // B's budget runs out while it waits behind A: the client gives up with
  // deadline_expired, and when the worker finally reaches the stale item
  // it drops it instead of burning a handler invocation on a reply nobody
  // is waiting for.
  start_server(rpc::UdpServerOptions{});  // unbounded queue

  auto ta = connect(/*timeout_ms=*/200, /*max_attempts=*/40);
  auto tb = connect(/*timeout_ms=*/30, /*max_attempts=*/10);

  auto fa = std::async(std::launch::async,
                       [&] { return ta->call(gate_request(1)); });
  gate_.wait_executing(1);

  auto rb = tb->call(gate_request(2, /*deadline_us=*/80'000));
  EXPECT_CODE(deadline_expired, status_of(rb));

  // Let the server-side deadline (started at arrival, slightly after the
  // client's) pass as well before draining the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  gate_.open();
  ASSERT_TRUE(fa.get().ok());

  const auto& io = udp_server_->io_counters();
  EXPECT_TRUE(poll([&] {
    return io.deadline_expired.load(std::memory_order_relaxed) >= 1;
  }));
  EXPECT_EQ(1, gate_.executed());  // A only; B's request never ran
}

TEST_F(OverloadTest, QueueDepthHighWaterMarkIsTracked) {
  start_server(rpc::UdpServerOptions{});
  auto ta = connect(/*timeout_ms=*/200, /*max_attempts=*/40);
  auto tb = connect(/*timeout_ms=*/200, /*max_attempts=*/40);
  auto fa = std::async(std::launch::async,
                       [&] { return ta->call(gate_request(1)); });
  gate_.wait_executing(1);
  auto fb = std::async(std::launch::async,
                       [&] { return tb->call(gate_request(2)); });
  const auto& io = udp_server_->io_counters();
  EXPECT_TRUE(poll([&] {
    return io.rx_queue_depth_max.load(std::memory_order_relaxed) >= 1;
  }));
  gate_.open();
  ASSERT_TRUE(fa.get().ok());
  ASSERT_TRUE(fb.get().ok());
}

// --- deadline propagation over the real Bullet stack ----------------------

TEST_F(OverloadTest, DeadlineBudgetRidesTheWireEndToEnd) {
  // A BulletClient with a generous per-call budget against a real server:
  // the 16-byte trailer must decode on the service path and change nothing
  // about successful calls.
  testing::BulletHarness h;
  rpc::UdpServerOptions options;
  options.workers = 2;
  auto server = rpc::UdpServer::start(options);
  ASSERT_TRUE(server.ok());
  ASSERT_OK(server.value()->register_service(&h.server()));

  rpc::UdpClientOptions copts;
  copts.server_udp_port = server.value()->port();
  auto transport = rpc::UdpTransport::connect(copts);
  ASSERT_TRUE(transport.ok());

  BulletClient client(transport.value().get(), h.server().super_capability());
  client.set_deadline_budget_ms(5000);
  auto cap = client.create(as_span("with a deadline"), 1);
  ASSERT_TRUE(cap.ok()) << cap.error().to_string();
  auto data = client.read_whole(cap.value());
  ASSERT_TRUE(data.ok()) << data.error().to_string();
  EXPECT_EQ("with a deadline", to_string(data.value()));
}

// --- request-trailer wire format ------------------------------------------

TEST(DeadlineTrailerTest, SixteenByteTrailerRoundTrips) {
  rpc::Request request;
  request.target.port = Port(0xAB);
  request.opcode = 7;
  request.body = {1, 2, 3};
  request.trace_id = 0x1234;
  request.deadline_us = 250'000;
  const Bytes wire = request.encode();
  EXPECT_EQ(request.wire_size(), wire.size());
  auto decoded = rpc::Request::decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(0x1234u, decoded.value().trace_id);
  EXPECT_EQ(250'000u, decoded.value().deadline_us);
}

TEST(DeadlineTrailerTest, DeadlineWithoutTraceIdStillWidensTheTrailer) {
  rpc::Request request;
  request.deadline_us = 9;
  const Bytes wire = request.encode();
  auto decoded = rpc::Request::decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(0u, decoded.value().trace_id);
  EXPECT_EQ(9u, decoded.value().deadline_us);
}

TEST(DeadlineTrailerTest, LegacyFormsAreByteIdenticalAndAccepted) {
  rpc::Request request;
  request.body = {42};
  const Bytes bare = request.encode();
  request.trace_id = 5;
  const Bytes traced = request.encode();
  EXPECT_EQ(bare.size() + 8, traced.size());
  auto decoded = rpc::Request::decode(traced);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(5u, decoded.value().trace_id);
  EXPECT_EQ(0u, decoded.value().deadline_us);
}

TEST(DeadlineTrailerTest, OtherTrailerLengthsRemainErrors) {
  rpc::Request request;
  Bytes wire = request.encode();
  wire.resize(wire.size() + 4);  // neither 8 nor 16 trailing bytes
  EXPECT_FALSE(rpc::Request::decode(wire).ok());
}

// --- disk-fill admission at the Bullet service layer ----------------------

// BlockDevice wrapper whose reads park on a latch while armed; boot-time
// scrub traffic runs with the gate disarmed.
class GateDisk final : public BlockDevice {
 public:
  explicit GateDisk(BlockDevice* inner) : inner_(inner) {}

  std::uint64_t block_size() const noexcept override {
    return inner_->block_size();
  }
  std::uint64_t num_blocks() const noexcept override {
    return inner_->num_blocks();
  }

  Status read(std::uint64_t first_block, MutableByteSpan out) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (armed_) {
        ++blocked_;
        cv_.notify_all();
        cv_.wait(lock, [&] { return !armed_; });
      }
    }
    return inner_->read(first_block, out);
  }
  Status write(std::uint64_t first_block, ByteSpan data) override {
    return inner_->write(first_block, data);
  }
  Status flush() override { return inner_->flush(); }

  void arm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = true;
  }
  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = false;
    cv_.notify_all();
  }
  void wait_blocked(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_ >= n; });
  }

 private:
  BlockDevice* inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool armed_ = false;
  int blocked_ = 0;
};

TEST(FillAdmissionTest, FillBoundShedsNewFillsButAdmitsJoins) {
  MemDisk raw(512, 4096);
  ASSERT_OK(BulletServer::format(raw, 64));
  GateDisk gate(&raw);
  auto mirror = MirroredDisk::create({&gate});
  ASSERT_TRUE(mirror.ok());
  auto mirror_disk = std::move(mirror).value();

  // Seed two files with a warm server, then boot a cold one whose only
  // route to the bytes is a disk fill through the (armed) gate.
  Capability cap_a, cap_b;
  {
    BulletConfig config;
    auto warm = BulletServer::start(&mirror_disk, config);
    ASSERT_TRUE(warm.ok());
    auto a = warm.value()->create(testing::payload(2048, 1), 1);
    auto b = warm.value()->create(testing::payload(2048, 2), 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    cap_a = a.value();
    cap_b = b.value();
  }
  BulletConfig config;
  config.io_threads = 1;
  config.max_inflight_fills = 1;
  auto server = BulletServer::start(&mirror_disk, config);
  ASSERT_TRUE(server.ok()) << server.error().to_string();
  gate.arm();

  // First miss registers the only permitted fill and parks on the device.
  std::promise<Status> first;
  auto first_done = first.get_future();
  server.value()->read_pinned_async(cap_a, [&](Result<BulletServer::PinnedFile> r) {
    first.set_value(status_of(r));
  });
  gate.wait_blocked(1);

  // A different file at the bound: shed synchronously, before any
  // allocation or device submission.
  Status second = Status::success();
  server.value()->read_pinned_async(cap_b, [&](Result<BulletServer::PinnedFile> r) {
    second = status_of(r);
  });
  EXPECT_CODE(retry_later, second);

  // The same file joins the in-flight fill instead of being shed: joining
  // adds no disk work, so the bound does not apply.
  std::promise<Status> join;
  auto join_done = join.get_future();
  server.value()->read_pinned_async(cap_a, [&](Result<BulletServer::PinnedFile> r) {
    join.set_value(status_of(r));
  });

  gate.open();
  EXPECT_OK(first_done.get());
  EXPECT_OK(join_done.get());
  EXPECT_EQ(1u, server.value()->stats().inflight_sheds);

  // With the device unblocked the shed file is readable again.
  std::promise<Status> retry;
  auto retry_done = retry.get_future();
  server.value()->read_pinned_async(cap_b, [&](Result<BulletServer::PinnedFile> r) {
    retry.set_value(status_of(r));
  });
  EXPECT_OK(retry_done.get());
}

}  // namespace
}  // namespace bullet
