// Boundary conditions across modules: exact-limit sizes, maximum names,
// zero-length everything, and other corners no other suite pins down.
#include <gtest/gtest.h>

#include "bullet/server.h"
#include "dir/server.h"
#include "logsvc/server.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;
using testing::status_of;

TEST(EdgeCaseTest, FileExactlyCacheSized) {
  BulletHarness::Options options;
  options.cache_bytes = 64 * 1024;
  options.disk_blocks = 1 << 10;  // plenty
  BulletHarness h(options);
  // Exactly the cache: admitted (and fills the whole arena).
  auto cap = h.server().create(payload(64 * 1024, 1), 1);
  ASSERT_TRUE(cap.ok());
  EXPECT_TRUE(equal(payload(64 * 1024, 1), h.server().read(cap.value()).value()));
  // One byte more: refused.
  EXPECT_CODE(too_large, status_of(h.server().create(payload(64 * 1024 + 1, 2), 1)));
}

TEST(EdgeCaseTest, FileExactlyFillsDataRegion) {
  BulletHarness::Options options;
  options.disk_blocks = 96;
  options.inode_slots = 32;  // 1 control block
  options.cache_bytes = 1 << 20;
  BulletHarness h(options);
  const std::uint64_t data_bytes =
      h.server().disk_free().total_free() * h.options().block_size;
  auto cap = h.server().create(payload(data_bytes, 1), 2);
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(0u, h.server().disk_free().total_free());
  // A second file of any size has nowhere to live.
  EXPECT_CODE(no_space, status_of(h.server().create(payload(1, 2), 1)));
  // Deleting frees everything back.
  ASSERT_OK(h.server().erase(cap.value()));
  EXPECT_EQ(data_bytes / h.options().block_size,
            h.server().disk_free().total_free());
}

TEST(EdgeCaseTest, ReadRangeAtExactBlockBoundaries) {
  BulletHarness h;
  const Bytes data = payload(2048, 3);  // exactly 4 blocks
  auto cap = h.server().create(data, 1);
  ASSERT_TRUE(cap.ok());
  for (const auto& [offset, length] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {0, 512}, {512, 512}, {1536, 512}, {511, 2}, {0, 2048},
           {2047, 1}, {0, 0}, {2048, 0}}) {
    auto range = h.server().read_range(cap.value(), offset, length);
    ASSERT_TRUE(range.ok()) << offset << "+" << length;
    EXPECT_TRUE(equal(ByteSpan(data.data() + offset, length), range.value()));
  }
}

TEST(EdgeCaseTest, CreateFromChainPreservesEveryVersion) {
  BulletHarness h;
  auto version = h.server().create(as_span("0"), 1);
  ASSERT_TRUE(version.ok());
  std::vector<Capability> chain{version.value()};
  for (int i = 1; i <= 10; ++i) {
    std::vector<wire::FileEdit> edits;
    edits.push_back(wire::FileEdit::make_append(
        to_bytes("," + std::to_string(i))));
    auto next = h.server().create_from(chain.back(), edits, 1);
    ASSERT_TRUE(next.ok()) << i;
    chain.push_back(next.value());
  }
  // Every version is alive, immutable, and distinct.
  EXPECT_EQ(11u, h.server().live_files());
  EXPECT_EQ("0", to_string(h.server().read(chain[0]).value()));
  EXPECT_EQ("0,1,2,3,4,5,6,7,8,9,10",
            to_string(h.server().read(chain.back()).value()));
}

TEST(EdgeCaseTest, DirNameAtMaximumLength) {
  BulletHarness h;
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(&h.server()));
  BulletClient storage(&transport, h.server().super_capability());
  auto dir_server = dir::DirServer::start(storage, dir::DirConfig());
  ASSERT_TRUE(dir_server.ok());
  auto dir = dir_server.value()->create_dir();
  ASSERT_TRUE(dir.ok());

  const std::string max_name(dir::kMaxNameLength, 'x');
  const std::string too_long(dir::kMaxNameLength + 1, 'x');
  auto file = storage.create(as_span("v"), 1);
  ASSERT_TRUE(file.ok());
  EXPECT_OK(dir_server.value()->enter(dir.value(), max_name, file.value()));
  EXPECT_CODE(bad_argument,
              dir_server.value()->enter(dir.value(), too_long, file.value()));
  EXPECT_TRUE(dir_server.value()->lookup(dir.value(), max_name).ok());
}

TEST(EdgeCaseTest, LogAppendExactlyOneExtent) {
  MemDisk disk(512, 512);
  ASSERT_OK(logsvc::LogServer::format(disk, 8));
  auto server = logsvc::LogServer::start(&disk, logsvc::LogConfig());
  ASSERT_TRUE(server.ok());
  auto log = server.value()->create_log();
  ASSERT_TRUE(log.ok());
  const std::uint64_t extent_bytes = logsvc::kExtentDataBlocks * 512;
  // Exactly one extent of data: no second extent allocated.
  const auto free_before = server.value()->free_extents();
  ASSERT_TRUE(server.value()->append(log.value(),
                                     payload(extent_bytes, 1)).ok());
  EXPECT_EQ(free_before - 1, server.value()->free_extents());
  // The next single byte allocates the second extent.
  ASSERT_TRUE(server.value()->append(log.value(), payload(1, 2)).ok());
  EXPECT_EQ(free_before - 2, server.value()->free_extents());
  // Contents intact across the boundary.
  auto tail = server.value()->read_range(log.value(), extent_bytes - 2, 3);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(3u, tail.value().size());
}

TEST(EdgeCaseTest, MirrorPartialWriteMoreThanReplicas) {
  MemDisk a(512, 8), b(512, 8);
  auto mirror = MirroredDisk::create({&a, &b});
  ASSERT_TRUE(mirror.ok());
  // Asking for more replicas than exist writes what there is.
  auto written = mirror.value().write_partial(0, payload(512, 1), 99);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(2, written.value());
}

TEST(EdgeCaseTest, ExtentAllocatorSingleUnitWorld) {
  ExtentAllocator alloc(7, 1);
  EXPECT_EQ(7u, *alloc.allocate(1));
  EXPECT_FALSE(alloc.allocate(1).has_value());
  ASSERT_OK(alloc.release(7, 1));
  EXPECT_EQ(7u, *alloc.allocate(1));
}

TEST(EdgeCaseTest, CacheSizedForExactlyOneFile) {
  // A one-slot universe: every second file evicts the first.
  FileCache cache(1000, /*max_entries=*/1);
  std::vector<std::uint32_t> evicted;
  auto a = cache.insert(1, 1000, &evicted);
  ASSERT_TRUE(a.ok());
  auto b = cache.insert(2, 500, &evicted);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(1u, evicted.size());
  EXPECT_EQ(1u, evicted[0]);
  EXPECT_EQ(2u, cache.inode_of(b.value()));
}

TEST(EdgeCaseTest, ServerSurvivesInterleavedAdminAndData) {
  // Compaction between every operation must never disturb live data.
  BulletHarness h;
  std::vector<std::pair<Capability, Bytes>> live;
  Rng rng(71);
  for (int i = 0; i < 30; ++i) {
    Bytes data(rng.next_range(1, 3000));
    rng.fill(data);
    auto cap = h.server().create(data, 1);
    ASSERT_TRUE(cap.ok());
    live.emplace_back(cap.value(), std::move(data));
    if (i % 3 == 0 && live.size() > 1) {
      const auto victim = rng.next_below(live.size());
      ASSERT_OK(h.server().erase(live[victim].first));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_TRUE(h.server().compact_disk().ok());
    for (const auto& [cap2, expected] : live) {
      auto read = h.server().read(cap2);
      ASSERT_TRUE(read.ok());
      ASSERT_TRUE(equal(expected, read.value()));
    }
  }
}

}  // namespace
}  // namespace bullet
