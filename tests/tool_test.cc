// Smoke tests for the bullet_tool CLI: full operator workflow against a
// file-backed image, driven through the real binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "tests/test_util.h"

#ifndef BULLET_TOOL_PATH
#error "BULLET_TOOL_PATH must be defined by the build"
#endif

namespace bullet {
namespace {

class ToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each TEST as its own process, possibly in parallel, and
    // the same binary may run twice concurrently: unique_temp_path (test
    // name + pid + counter) keeps every case's image/capture paths
    // collision-free.
    prefix_ = testing::unique_temp_path("");
    image_ = prefix_ + ".img";
    std::remove(image_.c_str());
  }
  void TearDown() override { std::remove(image_.c_str()); }

  // Run the tool; returns exit code and captures stdout into `out`.
  int run(const std::string& args, std::string* out = nullptr) {
    const std::string capture = prefix_ + ".out";
    const std::string command = std::string(BULLET_TOOL_PATH) + " " + args +
                                " > " + capture + " 2>/dev/null";
    const int code = std::system(command.c_str());
    if (out != nullptr) {
      std::ifstream in(capture);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      *out = buffer.str();
    }
    std::remove(capture.c_str());
    return WEXITSTATUS(code);
  }

  std::string write_temp(const std::string& name, const Bytes& data) {
    const std::string path = prefix_ + "." + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    return path;
  }

  std::string prefix_;
  std::string image_;
};

TEST_F(ToolTest, FullWorkflow) {
  ASSERT_EQ(0, run("format " + image_ + " 4 256"));

  // put -> capability on stdout.
  const Bytes payload = testing::payload(20000, 1);
  const std::string local = write_temp("in.bin", payload);
  std::string cap_text;
  ASSERT_EQ(0, run("put " + image_ + " " + local, &cap_text));
  while (!cap_text.empty() && (cap_text.back() == '\n')) cap_text.pop_back();
  ASSERT_FALSE(cap_text.empty());
  ASSERT_TRUE(Capability::from_string(cap_text).has_value()) << cap_text;

  // ls shows one file of the right size.
  std::string listing;
  ASSERT_EQ(0, run("ls " + image_, &listing));
  EXPECT_NE(std::string::npos, listing.find("20000"));
  EXPECT_NE(std::string::npos, listing.find("1 file(s)"));

  // get returns identical bytes.
  const std::string fetched = prefix_ + ".out.bin";
  ASSERT_EQ(0, run("get " + image_ + " " + cap_text + " " + fetched));
  std::ifstream in(fetched, std::ios::binary);
  Bytes round((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  EXPECT_TRUE(equal(payload, round));
  std::remove(fetched.c_str());

  // fsck is clean; rm deletes; ls shows nothing.
  ASSERT_EQ(0, run("fsck " + image_));
  ASSERT_EQ(0, run("rm " + image_ + " " + cap_text));
  ASSERT_EQ(0, run("ls " + image_, &listing));
  EXPECT_NE(std::string::npos, listing.find("0 file(s)"));
  // The capability is dead now.
  EXPECT_NE(0, run("get " + image_ + " " + cap_text));
}

TEST_F(ToolTest, CompactAfterChurn) {
  ASSERT_EQ(0, run("format " + image_ + " 4 256"));
  std::vector<std::string> caps;
  for (int i = 0; i < 4; ++i) {
    const std::string local =
        write_temp("f" + std::to_string(i), testing::payload(4096, i));
    std::string cap_text;
    ASSERT_EQ(0, run("put " + image_ + " " + local, &cap_text));
    while (!cap_text.empty() && cap_text.back() == '\n') cap_text.pop_back();
    caps.push_back(cap_text);
  }
  ASSERT_EQ(0, run("rm " + image_ + " " + caps[0]));
  ASSERT_EQ(0, run("rm " + image_ + " " + caps[2]));
  std::string out;
  ASSERT_EQ(0, run("compact " + image_, &out));
  EXPECT_NE(std::string::npos, out.find("1 hole(s) remain"));
  // Survivors still readable after compaction.
  ASSERT_EQ(0, run("get " + image_ + " " + caps[1]));
  ASSERT_EQ(0, run("get " + image_ + " " + caps[3]));
}

TEST_F(ToolTest, ErrorsAreReported) {
  EXPECT_NE(0, run("fsck /nonexistent/image"));
  EXPECT_NE(0, run("bogus-command " + image_));
  ASSERT_EQ(0, run("format " + image_ + " 4"));
  EXPECT_NE(0, run("get " + image_ + " not-a-capability"));
  EXPECT_NE(0, run("put " + image_ + " /nonexistent/file"));
}

TEST_F(ToolTest, ResilverBuildsAnIdenticalReplica) {
  ASSERT_EQ(0, run("format " + image_ + " 4 256"));
  const std::string local = write_temp("data.bin", testing::payload(9000, 5));
  std::string cap_text;
  ASSERT_EQ(0, run("put " + image_ + " " + local, &cap_text));
  while (!cap_text.empty() && cap_text.back() == '\n') cap_text.pop_back();

  const std::string copy = prefix_ + "-copy.img";
  std::remove(copy.c_str());
  std::string out;
  ASSERT_EQ(0, run("resilver " + image_ + " " + copy, &out));
  EXPECT_NE(std::string::npos, out.find("resilvered"));
  // The copy is now a full replica: a clean scrub, and the file is
  // readable from the copy alone.
  ASSERT_EQ(0, run("scrub " + image_ + " " + copy, &out));
  EXPECT_NE(std::string::npos, out.find("0 mismatched"));
  ASSERT_EQ(0, run("get " + copy + " " + cap_text));
  std::remove(copy.c_str());
}

TEST_F(ToolTest, ScrubFindsAndRepairsDivergence) {
  ASSERT_EQ(0, run("format " + image_ + " 4 256"));
  const std::string local = write_temp("data.bin", testing::payload(6000, 6));
  ASSERT_EQ(0, run("put " + image_ + " " + local));

  const std::string copy = prefix_ + "-copy.img";
  std::remove(copy.c_str());
  ASSERT_EQ(0, run("resilver " + image_ + " " + copy));

  // Flip bytes in the copy behind the mirror's back (silent bit-rot).
  {
    std::fstream f(copy, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(200 * 512 + 37);
    const char rot = 0x5A;
    f.write(&rot, 1);
  }

  // Detection alone exits non-zero and counts the block.
  std::string out;
  EXPECT_EQ(1, run("scrub " + image_ + " " + copy, &out));
  EXPECT_NE(std::string::npos, out.find("1 mismatched, 0 repaired"));
  // Repair fixes it; a second scrub is clean.
  ASSERT_EQ(0, run("scrub " + image_ + " " + copy + " repair", &out));
  EXPECT_NE(std::string::npos, out.find("1 mismatched, 1 repaired"));
  ASSERT_EQ(0, run("scrub " + image_ + " " + copy, &out));
  EXPECT_NE(std::string::npos, out.find("0 mismatched"));
  std::remove(copy.c_str());
}

TEST_F(ToolTest, StatReportsGeometry) {
  ASSERT_EQ(0, run("format " + image_ + " 8 512"));
  std::string out;
  ASSERT_EQ(0, run("stat " + image_, &out));
  EXPECT_NE(std::string::npos, out.find("block size:        512"));
  EXPECT_NE(std::string::npos, out.find("inode slots:       512"));
  EXPECT_NE(std::string::npos, out.find("live files:        0"));
}

}  // namespace
}  // namespace bullet
