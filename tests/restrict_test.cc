// Tests for capability restriction (Amoeba's std_restrict): the only
// legitimate way to weaken a capability, since the check field seals the
// rights bits.
#include <gtest/gtest.h>

#include "bullet/client.h"
#include "bullet/server.h"
#include "dir/client.h"
#include "dir/server.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;
using testing::status_of;

class RestrictTest : public ::testing::Test {
 protected:
  RestrictTest() {
    EXPECT_TRUE(transport_.register_service(&h_.server()).ok());
    client_ = std::make_unique<BulletClient>(&transport_,
                                             h_.server().super_capability());
  }
  BulletHarness h_;
  rpc::LoopbackTransport transport_;
  std::unique_ptr<BulletClient> client_;
};

TEST_F(RestrictTest, ReadOnlyCapCannotDelete) {
  auto cap = client_->create(payload(100, 1), 1);
  ASSERT_TRUE(cap.ok());
  auto read_only = client_->restrict(cap.value(), rights::kRead);
  ASSERT_TRUE(read_only.ok());
  EXPECT_EQ(rights::kRead, read_only.value().rights);
  // Reads work; delete is refused with `permission` (the seal is valid).
  EXPECT_TRUE(equal(payload(100, 1),
                    client_->read(read_only.value()).value()));
  EXPECT_CODE(permission, client_->erase(read_only.value()));
  // The original full-rights capability still deletes.
  EXPECT_OK(client_->erase(cap.value()));
}

TEST_F(RestrictTest, CannotEscalate) {
  auto cap = client_->create(payload(10, 1), 1);
  ASSERT_TRUE(cap.ok());
  auto read_only = client_->restrict(cap.value(), rights::kRead);
  ASSERT_TRUE(read_only.ok());
  // Restricting back up must fail...
  EXPECT_CODE(permission,
              status_of(client_->restrict(read_only.value(), rights::kAll)));
  EXPECT_CODE(permission,
              status_of(client_->restrict(
                  read_only.value(), rights::kRead | rights::kDelete)));
  // ... and hand-editing the bits fails verification outright.
  Capability forged = read_only.value();
  forged.rights = rights::kAll;
  EXPECT_CODE(bad_capability, status_of(client_->read(forged)));
}

TEST_F(RestrictTest, RestrictToSameOrNothing) {
  auto cap = client_->create(payload(10, 2), 1);
  ASSERT_TRUE(cap.ok());
  // Same rights: fine (idempotent delegation).
  auto same = client_->restrict(cap.value(), cap.value().rights);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(cap.value(), same.value());
  // Zero rights: a valid but useless capability.
  auto none = client_->restrict(cap.value(), 0);
  ASSERT_TRUE(none.ok());
  EXPECT_CODE(permission, status_of(client_->read(none.value())));
}

TEST_F(RestrictTest, RestrictedSuperCapCannotCreate) {
  auto read_super =
      client_->restrict(h_.server().super_capability(), rights::kRead);
  ASSERT_TRUE(read_super.ok());
  BulletClient weak(&transport_, read_super.value());
  EXPECT_CODE(permission, status_of(weak.create(payload(1, 1), 1)));
  // But an admin-only super cap still runs admin ops.
  auto admin_super =
      client_->restrict(h_.server().super_capability(), rights::kAdmin);
  ASSERT_TRUE(admin_super.ok());
  BulletClient admin(&transport_, admin_super.value());
  EXPECT_TRUE(admin.stats().ok());
}

TEST_F(RestrictTest, SurvivesReboot) {
  auto cap = client_->create(payload(50, 3), 2);
  ASSERT_TRUE(cap.ok());
  auto read_only = client_->restrict(cap.value(), rights::kRead);
  ASSERT_TRUE(read_only.ok());
  h_.reboot();
  EXPECT_TRUE(equal(payload(50, 3),
                    h_.server().read(read_only.value()).value()));
  EXPECT_CODE(permission, h_.server().erase(read_only.value()));
}

TEST_F(RestrictTest, DirectoryDelegation) {
  BulletClient storage(&transport_, h_.server().super_capability());
  auto dir_server = dir::DirServer::start(storage, dir::DirConfig());
  ASSERT_TRUE(dir_server.ok());
  ASSERT_OK(transport_.register_service(dir_server.value().get()));
  dir::DirClient names(&transport_, dir_server.value()->super_capability());

  auto dir = names.create_dir();
  ASSERT_TRUE(dir.ok());
  auto file = client_->create(as_span("shared doc"), 1);
  ASSERT_TRUE(file.ok());
  ASSERT_OK(names.enter(dir.value(), "doc", file.value()));

  // Delegate a browse-only view of the directory.
  auto browse = names.restrict(dir.value(), rights::kRead);
  ASSERT_TRUE(browse.ok());
  EXPECT_TRUE(names.lookup(browse.value(), "doc").ok());
  EXPECT_TRUE(names.list(browse.value()).ok());
  EXPECT_CODE(permission,
              names.enter(browse.value(), "sneak", file.value()));
  EXPECT_CODE(permission, names.remove(browse.value(), "doc"));
}

TEST_F(RestrictTest, InvalidCapCannotBeRestricted) {
  auto cap = client_->create(payload(10, 4), 1);
  ASSERT_TRUE(cap.ok());
  Capability forged = cap.value();
  forged.check ^= 0x2;
  EXPECT_CODE(bad_capability,
              status_of(client_->restrict(forged, rights::kRead)));
}

}  // namespace
}  // namespace bullet
