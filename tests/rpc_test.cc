// Tests for RPC framing, transports, and the Bullet client stub end-to-end.
#include <gtest/gtest.h>

#include "bullet/client.h"
#include "bullet/server.h"
#include "rpc/message.h"
#include "rpc/transport.h"
#include "sim/testbed.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;
using testing::status_of;

TEST(RpcMessageTest, RequestRoundtrip) {
  rpc::Request req;
  req.target.port = Port(0x123456);
  req.target.object = 42;
  req.target.rights = rights::kRead;
  req.target.check = 0xABCDEF;
  req.opcode = 7;
  req.body = payload(100, 1);

  const auto decoded = rpc::Request::decode(req.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(req.target, decoded.value().target);
  EXPECT_EQ(req.opcode, decoded.value().opcode);
  EXPECT_TRUE(equal(req.body, decoded.value().body));
  EXPECT_EQ(req.encode().size(), req.wire_size());
}

TEST(RpcMessageTest, ReplyRoundtrip) {
  rpc::Reply rep = rpc::Reply::success(payload(64, 2));
  const auto decoded = rpc::Reply::decode(rep.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(ErrorCode::ok, decoded.value().status);
  EXPECT_TRUE(equal(rep.body, decoded.value().body));

  const auto err = rpc::Reply::decode(rpc::Reply::error(ErrorCode::no_space).encode());
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(ErrorCode::no_space, err.value().status);
}

TEST(RpcMessageTest, DecodeRejectsTrailingBytes) {
  rpc::Request req;
  Bytes wire = req.encode();
  wire.push_back(0);
  EXPECT_FALSE(rpc::Request::decode(wire).ok());
}

TEST(LoopbackTransportTest, RoutesByPort) {
  BulletHarness h;
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(&h.server()));

  BulletClient client(&transport, h.server().super_capability());
  auto cap = client.create(as_span("over the wire"), 1);
  ASSERT_TRUE(cap.ok());
  auto data = client.read(cap.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ("over the wire", to_string(data.value()));
  EXPECT_GT(transport.calls(), 0u);
}

TEST(LoopbackTransportTest, UnknownPortUnreachable) {
  rpc::LoopbackTransport transport;
  rpc::Request req;
  req.target.port = Port(0xDEAD);
  EXPECT_CODE(unreachable, status_of(transport.call(req)));
}

TEST(LoopbackTransportTest, DuplicateRegistrationRejected) {
  BulletHarness h;
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(&h.server()));
  EXPECT_CODE(already_exists, transport.register_service(&h.server()));
  ASSERT_OK(transport.unregister_service(h.server().public_port()));
  ASSERT_OK(transport.register_service(&h.server()));
}

TEST(LoopbackTransportTest, RejectsNullAndNullPort) {
  rpc::LoopbackTransport transport;
  EXPECT_CODE(bad_argument, transport.register_service(nullptr));
}

// --- BulletClient over the wire ------------------------------------------------

class BulletClientTest : public ::testing::Test {
 protected:
  BulletClientTest() {
    EXPECT_TRUE(transport_.register_service(&h_.server()).ok());
    client_ = std::make_unique<BulletClient>(&transport_,
                                             h_.server().super_capability());
  }
  BulletHarness h_;
  rpc::LoopbackTransport transport_;
  std::unique_ptr<BulletClient> client_;
};

TEST_F(BulletClientTest, FullLifecycle) {
  const Bytes data = payload(12345, 6);
  auto cap = client_->create(data, 2);
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(12345u, client_->size(cap.value()).value());
  EXPECT_TRUE(equal(data, client_->read_whole(cap.value()).value()));
  ASSERT_OK(client_->erase(cap.value()));
  EXPECT_CODE(no_such_object, status_of(client_->read(cap.value())));
}

TEST_F(BulletClientTest, CreateFromOverWire) {
  auto base = client_->create(as_span("version one"), 1);
  ASSERT_TRUE(base.ok());
  std::vector<wire::FileEdit> edits;
  edits.push_back(wire::FileEdit::make_overwrite(8, to_bytes("two")));
  auto next = client_->create_from(base.value(), edits, 1);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ("version two", to_string(client_->read(next.value()).value()));
}

TEST_F(BulletClientTest, ReadRangeOverWire) {
  const Bytes data = payload(4000, 3);
  auto cap = client_->create(data, 1);
  ASSERT_TRUE(cap.ok());
  auto range = client_->read_range(cap.value(), 100, 200);
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE(equal(ByteSpan(data.data() + 100, 200), range.value()));
}

TEST_F(BulletClientTest, AdminOverWire) {
  ASSERT_TRUE(client_->create(payload(100, 1), 1).ok());
  auto stats = client_->stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(1u, stats.value().creates);
  ASSERT_OK(client_->sync());
  auto fsck = client_->fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_EQ(1u, fsck.value().files);
  auto moved = client_->compact_disk();
  ASSERT_TRUE(moved.ok());
}

TEST_F(BulletClientTest, BadPfactorRejectedClientSide) {
  EXPECT_CODE(bad_argument, status_of(client_->create(payload(1, 1), -1)));
  EXPECT_CODE(bad_argument, status_of(client_->create(payload(1, 1), 256)));
}

TEST_F(BulletClientTest, MalformedOpcodeRejected) {
  rpc::Request req;
  req.target = h_.server().super_capability();
  req.opcode = 0x7777;
  auto reply = transport_.call(req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(ErrorCode::not_supported, reply.value().status);
}

TEST_F(BulletClientTest, TruncatedBodyRejected) {
  rpc::Request req;
  req.target = h_.server().super_capability();
  req.opcode = wire::kCreate;
  req.body = Bytes{1};  // pfactor, but no data blob
  auto reply = transport_.call(req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(ErrorCode::bad_argument, reply.value().status);
}

// --- SimTransport ------------------------------------------------------------------

TEST(SimTransportTest, ChargesVirtualTime) {
  sim::Clock clock;
  BulletConfig config;
  config.clock = &clock;
  BulletHarness h;
  h.reboot(config);

  rpc::SimTransport transport(sim::NetParams::ethernet_10mbit(), &clock);
  ASSERT_OK(transport.register_service(&h.server(),
                                       sim::ProtocolCosts::amoeba_rpc_1989()));
  BulletClient client(&transport, h.server().super_capability());

  auto cap = client.create(payload(1000, 1), 0);  // pfactor 0: no disk wait
  ASSERT_TRUE(cap.ok());
  const auto after_create = clock.now();
  EXPECT_GT(after_create, 0);

  ASSERT_TRUE(client.read(cap.value()).ok());
  EXPECT_GT(clock.now(), after_create);
  EXPECT_GT(transport.bytes_on_wire(), 2000u);
}

TEST(SimTransportTest, LargerRepliesTakeLonger) {
  sim::Clock clock;
  BulletHarness h;
  rpc::SimTransport transport(sim::NetParams::ethernet_10mbit(), &clock);
  ASSERT_OK(transport.register_service(&h.server(),
                                       sim::ProtocolCosts::amoeba_rpc_1989()));
  BulletClient client(&transport, h.server().super_capability());

  auto small = client.create(payload(100, 1), 0);
  auto big = client.create(payload(100000, 2), 0);
  ASSERT_TRUE(small.ok() && big.ok());

  const auto t0 = clock.now();
  ASSERT_TRUE(client.read(small.value()).ok());
  const auto small_time = clock.now() - t0;
  ASSERT_TRUE(client.read(big.value()).ok());
  const auto big_time = clock.now() - t0 - small_time;
  EXPECT_GT(big_time, small_time * 10);
}

TEST(SimTransportTest, UnknownPortUnreachable) {
  sim::Clock clock;
  rpc::SimTransport transport(sim::NetParams::ethernet_10mbit(), &clock);
  rpc::Request req;
  req.target.port = Port(0xDEAD);
  EXPECT_CODE(unreachable, status_of(transport.call(req)));
}

}  // namespace
}  // namespace bullet
