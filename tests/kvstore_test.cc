// Tests for the sharded key-value store over immutable Bullet files.
#include <gtest/gtest.h>

#include <map>

#include "dir/server.h"
#include "kvstore/kv_store.h"
#include "tests/test_util.h"

namespace bullet::kvstore {
namespace {

using ::bullet::testing::BulletHarness;
using ::bullet::testing::payload;
using ::bullet::testing::status_of;

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest() {
    EXPECT_TRUE(transport_.register_service(&h_.server()).ok());
    BulletClient storage(&transport_, h_.server().super_capability());
    auto server = dir::DirServer::start(storage, dir::DirConfig());
    EXPECT_TRUE(server.ok());
    dir_server_ = std::move(server).value();
    EXPECT_TRUE(transport_.register_service(dir_server_.get()).ok());
    auto dir = dir_server_->create_dir();
    EXPECT_TRUE(dir.ok());
    dir_ = dir.value_or(Capability{});
  }

  BulletClient files() {
    return BulletClient(&transport_, h_.server().super_capability());
  }
  dir::DirClient names() {
    return dir::DirClient(&transport_, dir_server_->super_capability());
  }

  Result<KvStore> make(std::uint32_t buckets = 8) {
    KvConfig config;
    config.buckets = buckets;
    return KvStore::create(files(), names(), dir_, config);
  }

  BulletHarness h_;
  rpc::LoopbackTransport transport_;
  std::unique_ptr<dir::DirServer> dir_server_;
  Capability dir_;
};

TEST_F(KvStoreTest, PutGetEraseRoundtrip) {
  auto store = make();
  ASSERT_TRUE(store.ok());
  ASSERT_OK(store.value().put("alpha", as_span("1")));
  ASSERT_OK(store.value().put("beta", as_span("2")));
  auto got = store.value().get("alpha");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value().has_value());
  EXPECT_EQ("1", to_string(*got.value()));
  EXPECT_FALSE(store.value().get("gamma").value().has_value());
  ASSERT_OK(store.value().erase("alpha"));
  EXPECT_FALSE(store.value().get("alpha").value().has_value());
  EXPECT_CODE(not_found, store.value().erase("alpha"));
}

TEST_F(KvStoreTest, OverwriteReplacesValue) {
  auto store = make();
  ASSERT_TRUE(store.ok());
  ASSERT_OK(store.value().put("k", as_span("old")));
  ASSERT_OK(store.value().put("k", as_span("new")));
  EXPECT_EQ("new", to_string(*store.value().get("k").value()));
  EXPECT_EQ(1u, store.value().size().value());
}

TEST_F(KvStoreTest, KeysAreSortedAcrossBuckets) {
  auto store = make(4);
  ASSERT_TRUE(store.ok());
  for (const char* key : {"pear", "apple", "fig", "date", "cherry"}) {
    ASSERT_OK(store.value().put(key, as_span(key)));
  }
  auto keys = store.value().keys();
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(5u, keys.value().size());
  EXPECT_EQ("apple", keys.value().front());
  EXPECT_EQ("pear", keys.value().back());
  EXPECT_TRUE(std::is_sorted(keys.value().begin(), keys.value().end()));
}

TEST_F(KvStoreTest, EmptyKeyRejected) {
  auto store = make();
  ASSERT_TRUE(store.ok());
  EXPECT_CODE(bad_argument, store.value().put("", as_span("x")));
}

TEST_F(KvStoreTest, OnlyTheTouchedBucketIsRewritten) {
  // The whole point of sharding: a put rewrites one small bucket file, not
  // the whole database.
  auto store = make(8);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(store.value().put("key" + std::to_string(i),
                                payload(500, i)));
  }
  const auto creates_before = h_.server().stats().creates;
  ASSERT_OK(store.value().put("one-more", as_span("v")));
  // Exactly one new bucket version (the CAS swap is a directory write,
  // which itself creates one directory-version file).
  EXPECT_LE(h_.server().stats().creates - creates_before, 2u);
}

TEST_F(KvStoreTest, OpenRediscoversBucketCount) {
  {
    auto store = make(5);
    ASSERT_TRUE(store.ok());
    ASSERT_OK(store.value().put("persist", as_span("me")));
  }
  auto reopened = KvStore::open(files(), names(), dir_, KvConfig());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(5u, reopened.value().bucket_count());
  EXPECT_EQ("me", to_string(*reopened.value().get("persist").value()));
}

TEST_F(KvStoreTest, OpenFailsOnEmptyDirectory) {
  auto empty_dir = dir_server_->create_dir();
  ASSERT_TRUE(empty_dir.ok());
  EXPECT_CODE(not_found, status_of(KvStore::open(files(), names(),
                                                 empty_dir.value(),
                                                 KvConfig())));
}

TEST_F(KvStoreTest, ConflictingWritersRetryTransparently) {
  // Two handles to the same store: interleaved writes to the same bucket
  // must both land, with the loser retrying via CAS.
  auto a = make(1);  // one bucket: every write collides on it
  ASSERT_TRUE(a.ok());
  auto b = KvStore::open(files(), names(), dir_, KvConfig());
  ASSERT_TRUE(b.ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(a.value().put("a" + std::to_string(i), as_span("A")));
    ASSERT_OK(b.value().put("b" + std::to_string(i), as_span("B")));
  }
  // Each handle cached no state: all 20 keys visible from both.
  EXPECT_EQ(20u, a.value().size().value());
  EXPECT_EQ(20u, b.value().size().value());
}

TEST_F(KvStoreTest, VersionsAreRetired) {
  // Bucket churn must not leak Bullet files: live files stay bounded by
  // buckets + directory backing + snapshot-free overhead.
  auto store = make(4);
  ASSERT_TRUE(store.ok());
  const auto base = h_.server().live_files();
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(store.value().put("k" + std::to_string(i % 7), payload(64, i)));
  }
  // Only current bucket versions remain (4), not one file per put.
  EXPECT_EQ(base, h_.server().live_files());
}

TEST_F(KvStoreTest, GenuineCasConflictIsRetried) {
  // Force a real lost-update race: another writer publishes to the same
  // bucket between our load and our publish (via the test hook). The first
  // attempt must lose the CAS; the retry must succeed and keep BOTH
  // writes.
  KvConfig config;
  config.buckets = 1;
  int interferences = 0;
  auto victim_config = config;
  auto store = KvStore::create(files(), names(), dir_, config);
  ASSERT_TRUE(store.ok());
  auto intruder = KvStore::open(files(), names(), dir_, KvConfig());
  ASSERT_TRUE(intruder.ok());

  victim_config.before_publish = [&]() {
    if (interferences++ == 0) {
      ASSERT_OK(intruder.value().put("intruder", as_span("I")));
    }
  };
  auto victim = KvStore::open(files(), names(), dir_, victim_config);
  ASSERT_TRUE(victim.ok());

  ASSERT_OK(victim.value().put("victim", as_span("V")));
  EXPECT_EQ(1u, victim.value().cas_conflicts());
  EXPECT_EQ(2, interferences);  // hook ran on both attempts
  // Both updates survived the race.
  EXPECT_EQ("V", to_string(*victim.value().get("victim").value()));
  EXPECT_EQ("I", to_string(*victim.value().get("intruder").value()));
}

TEST_F(KvStoreTest, GivesUpAfterMaxRetries) {
  KvConfig config;
  config.buckets = 1;
  auto store = KvStore::create(files(), names(), dir_, config);
  ASSERT_TRUE(store.ok());
  auto intruder = KvStore::open(files(), names(), dir_, KvConfig());
  ASSERT_TRUE(intruder.ok());

  KvConfig hostile = config;
  hostile.max_retries = 3;
  int hits = 0;
  hostile.before_publish = [&]() {
    ++hits;  // interfere on EVERY attempt
    ASSERT_OK(intruder.value().put("noise" + std::to_string(hits),
                                   as_span("n")));
  };
  auto victim = KvStore::open(files(), names(), dir_, hostile);
  ASSERT_TRUE(victim.ok());
  EXPECT_CODE(conflict, victim.value().put("never", as_span("x")));
  EXPECT_EQ(3, hits);
}

TEST_F(KvStoreTest, RandomOpsMatchOracle) {
  auto store = make(8);
  ASSERT_TRUE(store.ok());
  std::map<std::string, Bytes> oracle;
  Rng rng(61);
  for (int step = 0; step < 300; ++step) {
    const std::string key = "k" + std::to_string(rng.next_below(30));
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 45) {
      Bytes value(rng.next_below(800));
      rng.fill(value);
      ASSERT_OK(store.value().put(key, value));
      oracle[key] = std::move(value);
    } else if (dice < 80) {
      auto got = store.value().get(key);
      ASSERT_TRUE(got.ok());
      const auto expected = oracle.find(key);
      if (expected == oracle.end()) {
        EXPECT_FALSE(got.value().has_value()) << key;
      } else {
        ASSERT_TRUE(got.value().has_value()) << key;
        EXPECT_TRUE(equal(expected->second, *got.value())) << key;
      }
    } else {
      const Status st = store.value().erase(key);
      if (oracle.erase(key) > 0) {
        EXPECT_OK(st);
      } else {
        EXPECT_CODE(not_found, st);
      }
    }
  }
  EXPECT_EQ(oracle.size(), store.value().size().value());
  auto keys = store.value().keys();
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(oracle.size(), keys.value().size());
  auto it = oracle.begin();
  for (const auto& key : keys.value()) {
    EXPECT_EQ(it->first, key);
    ++it;
  }
}

}  // namespace
}  // namespace bullet::kvstore
