// Trace propagation end to end: a client-supplied trace id rides the
// request trailer, the server's spans carry it, and BS_TRACE_DUMP returns
// the complete rx→tx chain — for a cache-hit READ and a P-FACTOR=2 CREATE
// through the real UDP worker pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "obs/trace.h"
#include "rpc/udp_transport.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;

struct Chain {
  std::uint64_t seq = 0;
  std::uint64_t trace_id = 0;
  std::uint16_t opcode = 0;
  std::vector<wire::TraceSpan> spans;

  bool has_stage(obs::Stage stage) const {
    return std::any_of(spans.begin(), spans.end(), [&](const auto& s) {
      return s.stage == static_cast<std::uint8_t>(stage);
    });
  }
};

std::vector<Chain> group_chains(const std::vector<wire::TraceSpan>& spans) {
  std::vector<Chain> chains;
  for (const wire::TraceSpan& s : spans) {
    if (chains.empty() || chains.back().seq != s.seq) {
      chains.push_back(Chain{s.seq, s.trace_id, s.opcode, {}});
    }
    chains.back().spans.push_back(s);
  }
  return chains;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Only client-forced traces in this test: no background sampling, and
    // nothing left over from other tests in this binary.
    obs::set_sample_every(0);
    obs::TraceSink::instance().clear();
  }
  void TearDown() override {
    obs::set_sample_every(obs::kDefaultSampleEvery);
    obs::TraceSink::instance().clear();
  }
};

TEST_F(TraceTest, ClientIdPropagatesThroughWorkerPool) {
  BulletHarness h;
  rpc::UdpServerOptions server_options;
  server_options.workers = 2;
  auto udp = rpc::UdpServer::start(server_options);
  ASSERT_TRUE(udp.ok());
  ASSERT_OK(udp.value()->register_service(&h.server()));

  rpc::UdpClientOptions client_options;
  client_options.server_udp_port = udp.value()->port();
  client_options.timeout_ms = 1000;
  auto transport = rpc::UdpTransport::connect(client_options);
  ASSERT_TRUE(transport.ok());
  BulletClient client(transport.value().get(), h.server().super_capability());

  // Untraced create primes the cache (create inserts into it), so the
  // traced read below is a cache hit.
  Bytes data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  auto cap = client.create(data, 1);
  ASSERT_TRUE(cap.ok());

  // Traced cache-hit READ.
  client.set_trace_id(0xFEEDFACE);
  auto read = client.read(cap.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(data, read.value());

  // Traced P-FACTOR=2 CREATE (both replicas written in the foreground).
  client.set_trace_id(0xC0FFEE);
  auto cap2 = client.create(data, 2);
  ASSERT_TRUE(cap2.ok());

  client.set_trace_id(0);
  auto dump = client.trace_dump(/*threshold_ns=*/0, /*max_spans=*/1024);
  ASSERT_TRUE(dump.ok());
  const std::vector<Chain> chains = group_chains(dump.value());

  const auto find_chain = [&](std::uint64_t id) -> const Chain* {
    for (const Chain& c : chains) {
      if (c.trace_id == id) return &c;
    }
    return nullptr;
  };

  // The READ chain: complete rx→tx through queue, lock, cache.
  const Chain* read_chain = find_chain(0xFEEDFACE);
  ASSERT_NE(nullptr, read_chain);
  EXPECT_EQ(wire::kRead, read_chain->opcode);
  for (const obs::Stage stage :
       {obs::Stage::kRx, obs::Stage::kQueue, obs::Stage::kHandle,
        obs::Stage::kLockShared, obs::Stage::kCache, obs::Stage::kEncode,
        obs::Stage::kTx}) {
    EXPECT_TRUE(read_chain->has_stage(stage))
        << "read chain missing " << obs::stage_name(stage);
  }
  // A cache hit never touches the disk.
  EXPECT_FALSE(read_chain->has_stage(obs::Stage::kDiskRead));

  // The CREATE chain: exclusive lock and foreground replica writes.
  const Chain* create_chain = find_chain(0xC0FFEE);
  ASSERT_NE(nullptr, create_chain);
  EXPECT_EQ(wire::kCreate, create_chain->opcode);
  for (const obs::Stage stage :
       {obs::Stage::kRx, obs::Stage::kQueue, obs::Stage::kHandle,
        obs::Stage::kLockExcl, obs::Stage::kDiskWrite, obs::Stage::kEncode,
        obs::Stage::kTx}) {
    EXPECT_TRUE(create_chain->has_stage(stage))
        << "create chain missing " << obs::stage_name(stage);
  }

  // Every span in a chain carries the same id/seq/opcode, and the handle
  // span nests inside the chain's wall-clock window.
  for (const Chain* chain : {read_chain, create_chain}) {
    std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
    for (const wire::TraceSpan& s : chain->spans) {
      EXPECT_EQ(chain->trace_id, s.trace_id);
      EXPECT_EQ(chain->seq, s.seq);
      EXPECT_EQ(chain->opcode, s.opcode);
      lo = std::min(lo, s.start_ns);
      hi = std::max(hi, s.start_ns + s.dur_ns);
    }
    EXPECT_GT(hi, lo);
  }

  // The dump drained: a second dump has neither chain.
  auto empty = client.trace_dump(0, 1024);
  ASSERT_TRUE(empty.ok());
  for (const Chain& c : group_chains(empty.value())) {
    EXPECT_NE(0xFEEDFACEu, c.trace_id);
    EXPECT_NE(0xC0FFEEu, c.trace_id);
  }

  udp.value()->stop();
}

TEST_F(TraceTest, ThresholdFiltersFastChains) {
  BulletHarness h;
  rpc::LoopbackTransport local;
  ASSERT_OK(local.register_service(&h.server()));
  BulletClient client(&local, h.server().super_capability());

  client.set_trace_id(7);
  Bytes data(512, 0xAB);
  auto cap = client.create(data, 1);
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(client.read(cap.value()).ok());
  client.set_trace_id(0);

  // An impossible threshold drops everything (and consumes it).
  auto dump = client.trace_dump(/*threshold_ns=*/~std::uint64_t{0} / 2, 1024);
  ASSERT_TRUE(dump.ok());
  EXPECT_TRUE(dump.value().empty());
}

TEST_F(TraceTest, SamplingTracesIdLessRequests) {
  obs::set_sample_every(2);  // every 2nd id-less request per thread
  BulletHarness h;
  rpc::LoopbackTransport local;
  ASSERT_OK(local.register_service(&h.server()));
  BulletClient client(&local, h.server().super_capability());

  Bytes data(256, 0x5A);
  auto cap = client.create(data, 1);
  ASSERT_TRUE(cap.ok());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(client.read(cap.value()).ok());

  auto dump = client.trace_dump(0, 4096);
  ASSERT_TRUE(dump.ok());
  const std::vector<Chain> chains = group_chains(dump.value());
  // 9 requests at 1-in-2 sampling: at least two traced, all with id 0.
  EXPECT_GE(chains.size(), 2u);
  std::set<std::uint64_t> seqs;
  for (const Chain& c : chains) {
    EXPECT_EQ(0u, c.trace_id);
    EXPECT_TRUE(seqs.insert(c.seq).second) << "chains not contiguous";
  }
}

}  // namespace
}  // namespace bullet
