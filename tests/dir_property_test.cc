// Randomized property test for the directory server: random naming
// operations against a map oracle, with a checkpoint/restore cycle in the
// middle and Bullet-file accounting (every mutation retires the old
// directory version).
#include <gtest/gtest.h>

#include <map>

#include "dir/client.h"
#include "dir/server.h"
#include "tests/test_util.h"

namespace bullet::dir {
namespace {

using ::bullet::testing::BulletHarness;

class DirPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirPropertyTest, RandomOpsMatchOracle) {
  BulletHarness h;
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(&h.server()));
  BulletClient storage(&transport, h.server().super_capability());
  auto started = DirServer::start(storage, DirConfig());
  ASSERT_TRUE(started.ok());
  auto server = std::move(started).value();

  Rng rng(GetParam());

  // A handful of directories, each with its oracle map.
  std::vector<Capability> dirs;
  std::vector<std::map<std::string, Capability>> oracle;
  for (int i = 0; i < 4; ++i) {
    auto dir = server->create_dir();
    ASSERT_TRUE(dir.ok());
    dirs.push_back(dir.value());
    oracle.emplace_back();
  }

  auto random_name = [&rng]() {
    return "n" + std::to_string(rng.next_below(12));
  };
  auto random_target = [&rng]() {
    Capability cap;
    cap.port = Port(rng.next());
    cap.object = static_cast<std::uint32_t>(rng.next());
    cap.rights = static_cast<std::uint8_t>(rng.next());
    cap.check = rng.next() & kMask48;
    return cap;
  };

  auto run_ops = [&](int count) {
    for (int step = 0; step < count; ++step) {
      const std::size_t d = rng.next_below(dirs.size());
      const std::string name = random_name();
      const std::uint64_t dice = rng.next_below(100);
      if (dice < 30) {
        const Capability target = random_target();
        const Status st = server->enter(dirs[d], name, target);
        if (oracle[d].contains(name)) {
          EXPECT_CODE(already_exists, st);
        } else {
          ASSERT_OK(st);
          oracle[d].emplace(name, target);
        }
      } else if (dice < 55) {
        auto found = server->lookup(dirs[d], name);
        const auto expected = oracle[d].find(name);
        if (expected == oracle[d].end()) {
          EXPECT_CODE(not_found, ::bullet::testing::status_of(found));
        } else {
          ASSERT_TRUE(found.ok());
          EXPECT_EQ(expected->second, found.value());
        }
      } else if (dice < 75) {
        const Capability target = random_target();
        auto old = server->replace(dirs[d], name, target);
        auto expected = oracle[d].find(name);
        if (expected == oracle[d].end()) {
          EXPECT_FALSE(old.ok());
        } else {
          ASSERT_TRUE(old.ok());
          EXPECT_EQ(expected->second, old.value());
          expected->second = target;
        }
      } else if (dice < 90) {
        const Status st = server->remove(dirs[d], name);
        if (oracle[d].erase(name) > 0) {
          EXPECT_OK(st);
        } else {
          EXPECT_CODE(not_found, st);
        }
      } else {
        auto listing = server->list(dirs[d]);
        ASSERT_TRUE(listing.ok());
        ASSERT_EQ(oracle[d].size(), listing.value().size());
        auto it = oracle[d].begin();
        for (const auto& entry : listing.value()) {
          EXPECT_EQ(it->first, entry.name);
          EXPECT_EQ(it->second, entry.target);
          ++it;
        }
      }
    }
  };

  run_ops(150);

  // Mid-stream checkpoint + restore onto a fresh server instance.
  auto snapshot = server->checkpoint();
  ASSERT_TRUE(snapshot.ok());
  DirConfig config;
  config.restore_from = snapshot.value();
  auto revived = DirServer::start(storage, config);
  ASSERT_TRUE(revived.ok());
  server = std::move(revived).value();

  // All state carried over; old capabilities still verify.
  for (std::size_t d = 0; d < dirs.size(); ++d) {
    auto listing = server->list(dirs[d]);
    ASSERT_TRUE(listing.ok()) << d;
    EXPECT_EQ(oracle[d].size(), listing.value().size()) << d;
  }

  run_ops(150);

  // Version accounting: each live directory holds exactly one backing file
  // (superseded versions were deleted), plus the snapshot file itself.
  EXPECT_EQ(dirs.size() + 1, h.server().live_files());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirPropertyTest,
                         ::testing::Values(41, 42, 43, 44));

}  // namespace
}  // namespace bullet::dir
