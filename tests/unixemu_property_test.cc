// Randomized property test for the UNIX emulation: a random sequence of
// POSIX-shaped operations checked against an in-memory map<path, contents>
// oracle, including directory operations.
#include <gtest/gtest.h>

#include <map>

#include "dir/server.h"
#include "tests/test_util.h"
#include "unixemu/unix_fs.h"

namespace bullet::unixemu {
namespace {

using ::bullet::testing::BulletHarness;
namespace flags = open_flags;

class UnixFsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  UnixFsPropertyTest() {
    EXPECT_TRUE(transport_.register_service(&h_.server()).ok());
    BulletClient storage(&transport_, h_.server().super_capability());
    auto server = dir::DirServer::start(storage, dir::DirConfig());
    EXPECT_TRUE(server.ok());
    dir_server_ = std::move(server).value();
    EXPECT_TRUE(transport_.register_service(dir_server_.get()).ok());
    auto root = dir_server_->create_dir();
    EXPECT_TRUE(root.ok());
    fs_ = std::make_unique<UnixFs>(
        BulletClient(&transport_, h_.server().super_capability()),
        dir::DirClient(&transport_, dir_server_->super_capability()),
        root.value_or(Capability{}));
  }

  BulletHarness h_;
  rpc::LoopbackTransport transport_;
  std::unique_ptr<dir::DirServer> dir_server_;
  std::unique_ptr<UnixFs> fs_;
};

TEST_P(UnixFsPropertyTest, RandomOpsMatchOracle) {
  Rng rng(GetParam());
  // Fixed small namespace: 3 directories x 4 names.
  const std::vector<std::string> dirs = {"", "a", "b"};
  for (const auto& d : dirs) {
    if (!d.empty()) ASSERT_OK(fs_->mkdir(d));
  }
  auto random_path = [&]() {
    const std::string& d = dirs[rng.next_below(dirs.size())];
    const std::string leaf = "f" + std::to_string(rng.next_below(4));
    return d.empty() ? leaf : d + "/" + leaf;
  };

  std::map<std::string, Bytes> oracle;  // path -> contents

  for (int step = 0; step < 250; ++step) {
    const std::string path = random_path();
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 35) {
      // Write (create or truncate) with fresh contents.
      Bytes data(rng.next_below(8000));
      rng.fill(data);
      auto fd = fs_->open(path,
                          flags::kWrite | flags::kCreate | flags::kTruncate);
      ASSERT_TRUE(fd.ok()) << path;
      ASSERT_TRUE(fs_->write(fd.value(), data).ok());
      ASSERT_OK(fs_->close(fd.value()));
      oracle[path] = std::move(data);
    } else if (dice < 55) {
      // Append.
      Bytes extra(rng.next_range(1, 2000));
      rng.fill(extra);
      auto fd = fs_->open(path,
                          flags::kWrite | flags::kCreate | flags::kAppend);
      ASSERT_TRUE(fd.ok()) << path;
      ASSERT_TRUE(fs_->write(fd.value(), extra).ok());
      ASSERT_OK(fs_->close(fd.value()));
      append(oracle[path], extra);  // creates empty entry if absent
    } else if (dice < 85) {
      // Read whole file and compare.
      auto fd = fs_->open(path, flags::kRead);
      const auto expected = oracle.find(path);
      if (expected == oracle.end()) {
        EXPECT_FALSE(fd.ok()) << path;
        continue;
      }
      ASSERT_TRUE(fd.ok()) << path;
      Bytes out;
      for (;;) {
        auto chunk = fs_->read(fd.value(), 4096);
        ASSERT_TRUE(chunk.ok());
        if (chunk.value().empty()) break;
        append(out, chunk.value());
      }
      ASSERT_OK(fs_->close(fd.value()));
      ASSERT_TRUE(equal(expected->second, out)) << path << " step " << step;
    } else if (dice < 95) {
      // Unlink.
      const Status st = fs_->unlink(path);
      if (oracle.erase(path) > 0) {
        EXPECT_OK(st);
      } else {
        EXPECT_FALSE(st.ok());
      }
    } else {
      // Consistency sweep: stat sizes match the oracle.
      for (const auto& [p, contents] : oracle) {
        auto info = fs_->stat(p);
        ASSERT_TRUE(info.ok()) << p;
        EXPECT_EQ(contents.size(), info.value().size) << p;
      }
    }
  }

  // Final: directory listings agree with the oracle's key set.
  for (const auto& d : dirs) {
    auto names = fs_->readdir(d.empty() ? "/" : d);
    ASSERT_TRUE(names.ok());
    std::size_t expected = 0;
    for (const auto& [p, contents] : oracle) {
      (void)contents;
      const auto slash = p.find('/');
      const std::string parent =
          slash == std::string::npos ? "" : p.substr(0, slash);
      if (parent == d) ++expected;
    }
    // Root also contains the two directories themselves.
    const std::size_t extra = d.empty() ? 2 : 0;
    EXPECT_EQ(expected + extra, names.value().size()) << "dir '" << d << "'";
  }

  // No file descriptors leaked.
  EXPECT_EQ(0u, fs_->open_files());
  // The Bullet server holds exactly one live file per oracle entry plus the
  // directory backing files (3 directories).
  EXPECT_EQ(oracle.size() + 3, h_.server().live_files());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnixFsPropertyTest,
                         ::testing::Values(31, 32, 33, 34));

}  // namespace
}  // namespace bullet::unixemu
