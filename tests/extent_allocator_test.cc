// Tests for the first-fit extent allocator, including a randomized
// property suite against a brute-force bitmap oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "bullet/extent_allocator.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

TEST(ExtentAllocatorTest, StartsFullyFree) {
  ExtentAllocator alloc(10, 100);
  EXPECT_EQ(100u, alloc.total_free());
  EXPECT_EQ(100u, alloc.largest_hole());
  EXPECT_EQ(1u, alloc.hole_count());
  EXPECT_TRUE(alloc.is_free(10, 100));
  EXPECT_FALSE(alloc.is_free(9, 1));
  EXPECT_FALSE(alloc.is_free(10, 101));
}

TEST(ExtentAllocatorTest, FirstFitPicksLowestOffset) {
  ExtentAllocator alloc(0, 100);
  EXPECT_EQ(0u, *alloc.allocate(10));
  EXPECT_EQ(10u, *alloc.allocate(10));
  ASSERT_OK(alloc.release(0, 10));
  // First fit returns to the front hole even though the tail is larger.
  EXPECT_EQ(0u, *alloc.allocate(5));
}

TEST(ExtentAllocatorTest, FirstFitSkipsTooSmallHoles) {
  ExtentAllocator alloc(0, 100);
  ASSERT_TRUE(alloc.allocate(10).has_value());  // [0,10)
  ASSERT_TRUE(alloc.allocate(10).has_value());  // [10,20)
  ASSERT_TRUE(alloc.allocate(10).has_value());  // [20,30)
  ASSERT_OK(alloc.release(10, 10));             // hole of 10 at offset 10
  // Request larger than the first hole: lands at 30.
  EXPECT_EQ(30u, *alloc.allocate(20));
}

TEST(ExtentAllocatorTest, ExhaustionReturnsNullopt) {
  ExtentAllocator alloc(0, 10);
  EXPECT_TRUE(alloc.allocate(10).has_value());
  EXPECT_FALSE(alloc.allocate(1).has_value());
  EXPECT_FALSE(alloc.allocate(0).has_value());  // zero-length never allocates
}

TEST(ExtentAllocatorTest, FragmentationBlocksLargeRequests) {
  ExtentAllocator alloc(0, 30);
  const auto a = *alloc.allocate(10);
  const auto b = *alloc.allocate(10);
  const auto c = *alloc.allocate(10);
  (void)b;
  ASSERT_OK(alloc.release(a, 10));
  ASSERT_OK(alloc.release(c, 10));
  EXPECT_EQ(20u, alloc.total_free());
  EXPECT_EQ(10u, alloc.largest_hole());
  EXPECT_FALSE(alloc.allocate(15).has_value());  // fragmented
}

TEST(ExtentAllocatorTest, ReleaseCoalescesBothSides) {
  ExtentAllocator alloc(0, 30);
  const auto a = *alloc.allocate(10);
  const auto b = *alloc.allocate(10);
  const auto c = *alloc.allocate(10);
  ASSERT_OK(alloc.release(a, 10));
  ASSERT_OK(alloc.release(c, 10));
  EXPECT_EQ(2u, alloc.hole_count());
  ASSERT_OK(alloc.release(b, 10));  // bridges both neighbours
  EXPECT_EQ(1u, alloc.hole_count());
  EXPECT_EQ(30u, alloc.largest_hole());
}

TEST(ExtentAllocatorTest, DoubleFreeDetected) {
  ExtentAllocator alloc(0, 20);
  const auto a = *alloc.allocate(10);
  ASSERT_OK(alloc.release(a, 10));
  EXPECT_CODE(bad_state, alloc.release(a, 10));
  EXPECT_CODE(bad_state, alloc.release(a + 2, 4));  // inside a hole
}

TEST(ExtentAllocatorTest, ReleaseOutOfRangeRejected) {
  ExtentAllocator alloc(10, 20);
  EXPECT_CODE(bad_argument, alloc.release(5, 3));
  EXPECT_CODE(bad_argument, alloc.release(28, 5));
}

TEST(ExtentAllocatorTest, ReleaseZeroLengthIsNoop) {
  ExtentAllocator alloc(0, 10);
  EXPECT_OK(alloc.release(5, 0));
  EXPECT_EQ(10u, alloc.total_free());
}

TEST(ExtentAllocatorTest, ReserveCarvesFromHole) {
  ExtentAllocator alloc(0, 100);
  ASSERT_OK(alloc.reserve(40, 20));
  EXPECT_EQ(80u, alloc.total_free());
  EXPECT_EQ(2u, alloc.hole_count());
  EXPECT_FALSE(alloc.is_free(40, 1));
  EXPECT_TRUE(alloc.is_free(0, 40));
  EXPECT_TRUE(alloc.is_free(60, 40));
  // Overlapping reserve must fail.
  EXPECT_CODE(bad_state, alloc.reserve(50, 20));
  // Exact-fit reserve of a whole hole works.
  ASSERT_OK(alloc.reserve(0, 40));
  EXPECT_EQ(40u, alloc.total_free());
}

TEST(ExtentAllocatorTest, ReserveAtHoleEdges) {
  ExtentAllocator alloc(0, 100);
  ASSERT_OK(alloc.reserve(0, 10));    // front edge
  ASSERT_OK(alloc.reserve(90, 10));   // back edge
  EXPECT_EQ(1u, alloc.hole_count());
  EXPECT_EQ(80u, alloc.largest_hole());
}

TEST(ExtentAllocatorTest, EmptyAllocatorIsInert) {
  ExtentAllocator alloc;
  EXPECT_EQ(0u, alloc.total_free());
  EXPECT_FALSE(alloc.allocate(1).has_value());
}

// --- randomized property test vs. a bitmap oracle ---------------------------

class AllocatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorPropertyTest, MatchesBitmapOracle) {
  constexpr std::uint64_t kStart = 16;
  constexpr std::uint64_t kLength = 512;
  ExtentAllocator alloc(kStart, kLength);
  std::vector<bool> oracle(kLength, false);  // true = allocated
  std::map<std::uint64_t, std::uint64_t> live;  // offset -> length
  Rng rng(GetParam());

  auto oracle_first_fit = [&](std::uint64_t n) -> std::optional<std::uint64_t> {
    std::uint64_t run = 0;
    for (std::uint64_t i = 0; i < kLength; ++i) {
      run = oracle[i] ? 0 : run + 1;
      if (run == n) return kStart + i + 1 - n;
    }
    return std::nullopt;
  };

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t pick = rng.next_below(100);
    if (live.empty() || pick < 55) {
      const std::uint64_t n = rng.next_range(1, 24);
      const auto expected = oracle_first_fit(n);
      const auto got = alloc.allocate(n);
      ASSERT_EQ(expected.has_value(), got.has_value()) << "step " << step;
      if (got.has_value()) {
        ASSERT_EQ(*expected, *got) << "step " << step;
        for (std::uint64_t i = 0; i < n; ++i) {
          oracle[*got - kStart + i] = true;
        }
        live.emplace(*got, n);
      }
    } else if (pick < 70) {
      // Reserve an arbitrary range; must succeed iff the oracle says the
      // whole range is free (exercises hole splitting at both edges).
      const std::uint64_t n = rng.next_range(1, 24);
      const std::uint64_t offset = kStart + rng.next_below(kLength - n + 1);
      bool range_free = true;
      for (std::uint64_t i = 0; i < n; ++i) {
        if (oracle[offset - kStart + i]) range_free = false;
      }
      const Status st = alloc.reserve(offset, n);
      ASSERT_EQ(range_free, st.ok()) << "step " << step;
      if (range_free) {
        for (std::uint64_t i = 0; i < n; ++i) {
          oracle[offset - kStart + i] = true;
        }
        live.emplace(offset, n);
      }
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.next_below(live.size())));
      ASSERT_OK(alloc.release(it->first, it->second));
      for (std::uint64_t i = 0; i < it->second; ++i) {
        oracle[it->first - kStart + i] = false;
      }
      live.erase(it);
    }

    // Invariant: total_free matches the oracle's free count.
    std::uint64_t free_count = 0;
    for (const bool used : oracle) free_count += used ? 0 : 1;
    ASSERT_EQ(free_count, alloc.total_free()) << "step " << step;

    // Invariant: the incrementally-maintained largest_hole matches the
    // longest free run in the oracle (every split and coalesce must have
    // updated the hole-size multiset correctly).
    std::uint64_t longest = 0;
    std::uint64_t run = 0;
    for (const bool used : oracle) {
      run = used ? 0 : run + 1;
      longest = std::max(longest, run);
    }
    ASSERT_EQ(longest, alloc.largest_hole()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace bullet
