// Crash-point durability sweep: crash the mirror at EVERY write index the
// workload issues — clean, torn at block granularity, and torn at inode
// (16-byte) granularity — reboot from the surviving images, and hold the
// server to its durability contract. See tests/crash_harness.h for the
// checked invariants and the tear model.
#include <gtest/gtest.h>

#include "tests/crash_harness.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::CrashHarness;

// The workload must be big enough that the sweep means something.
constexpr std::uint64_t kMinWrites = 20;

std::uint64_t probe_total_writes() {
  CrashHarness harness;
  const std::uint64_t total = harness.run(
      CrashPlan::kNeverCrash, CrashPlan::TearMode::clean, /*torn_align=*/1);
  harness.verify_recovery();
  return total;
}

TEST(CrashSweepTest, WorkloadIsSubstantial) {
  EXPECT_GE(probe_total_writes(), kMinWrites);
}

TEST(CrashSweepTest, CleanCrashAtEveryWriteIndex) {
  const std::uint64_t total = probe_total_writes();
  CrashHarness harness;
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE(::testing::Message() << "clean crash at write " << k);
    harness.run(k, CrashPlan::TearMode::clean, /*torn_align=*/1);
    harness.verify_recovery();
  }
}

TEST(CrashSweepTest, TornBlockPrefixCrashAtEveryWriteIndex) {
  const std::uint64_t total = probe_total_writes();
  CrashHarness harness;
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE(::testing::Message() << "torn-prefix crash at write " << k);
    harness.run(k, CrashPlan::TearMode::torn_prefix, /*torn_align=*/1);
    harness.verify_recovery();
  }
}

TEST(CrashSweepTest, TornInodeGranularityCrashAtEveryWriteIndex) {
  const std::uint64_t total = probe_total_writes();
  CrashHarness harness;
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE(::testing::Message() << "torn-bytes crash at write " << k);
    harness.run(k, CrashPlan::TearMode::torn_bytes, /*torn_align=*/16);
    harness.verify_recovery();
  }
}

// The incremental-compaction protocol claims the crash-safe copy-then-flip
// invariant holds at EVERY step boundary, not just at the end of a full
// pass. Single-step a compaction of a fragmented disk and, after each
// bounded step, boot a fresh server from an image of the disks exactly as
// a power cut at that boundary would leave them. Every file must read back
// CRC-exact, fsck must find nothing, the free list must equal a fresh
// inode scan, and the replicas must already be identical (no healing
// needed — step writes are write-through to the whole mirror).
TEST(CrashSweepTest, RebootAtEveryIncrementalCompactionStepBoundary) {
  BulletHarness::Options options;
  options.disk_blocks = 1024;
  options.inode_slots = 64;
  options.cache_bytes = 64 << 10;
  BulletHarness h(options);

  // Fragment the data region: interleaved creates, then erase every other
  // file. The survivors need both disjoint and overlapping (staged) slides.
  std::vector<std::pair<Capability, std::uint32_t>> live;
  std::vector<Capability> doomed;
  for (int i = 0; i < 10; ++i) {
    const Bytes data = testing::payload(1800 + 700 * (i % 4),
                                        0xC0FFEEull + static_cast<unsigned>(i));
    auto cap = h.server().create(data, 2);
    ASSERT_OK(testing::status_of(cap));
    if (i % 2 == 0) {
      live.emplace_back(cap.value(), crc32c(data));
    } else {
      doomed.push_back(cap.value());
    }
  }
  for (const Capability& cap : doomed) ASSERT_OK(h.server().erase(cap));

  // Step with small slices so every multi-block move spans several
  // boundaries (4 blocks per step; the files above are 4-10 blocks each).
  std::uint64_t steps = 0;
  for (;;) {
    auto progress = h.server().compact_step(/*max_blocks=*/4);
    ASSERT_OK(testing::status_of(progress));
    ++steps;
    ASSERT_LT(steps, 10000u) << "compaction failed to converge";

    // "Crash" here: image both replicas and boot a throwaway server.
    std::vector<std::unique_ptr<MemDisk>> copies;
    std::vector<BlockDevice*> replicas;
    for (int r = 0; r < options.replicas; ++r) {
      copies.push_back(std::make_unique<MemDisk>(options.block_size,
                                                 options.disk_blocks));
      ASSERT_OK(copies.back()->restore(h.disk(r).snapshot()));
      replicas.push_back(copies.back().get());
    }
    auto scrub_mirror = MirroredDisk::create(std::move(replicas));
    ASSERT_OK(testing::status_of(scrub_mirror));
    auto scrub = scrub_mirror.value().scrub(/*repair=*/false);
    ASSERT_OK(testing::status_of(scrub));
    EXPECT_EQ(0u, scrub.value().mismatched_blocks)
        << "replicas diverged at step " << steps;

    MirroredDisk mirror = std::move(scrub_mirror).value();
    BulletConfig config;
    config.cache_bytes = options.cache_bytes;
    auto booted = BulletServer::start(&mirror, config);
    ASSERT_OK(testing::status_of(booted));
    BulletServer& rebooted = *booted.value();
    EXPECT_EQ(0u, rebooted.boot_report().repairs())
        << "boot fsck repaired inodes at step " << steps;
    for (const auto& [cap, crc] : live) {
      auto data = rebooted.read(cap);
      ASSERT_OK(testing::status_of(data));
      EXPECT_EQ(crc, crc32c(data.value())) << "corrupt file at step " << steps;
    }
    const DiskLayout& layout = rebooted.layout();
    ExtentAllocator expected(layout.data_start_block(), layout.data_blocks());
    for (const auto& object : rebooted.list_objects()) {
      const std::uint64_t blocks = layout.blocks_for(object.size_bytes);
      if (blocks > 0) ASSERT_OK(expected.reserve(object.first_block, blocks));
    }
    EXPECT_EQ(expected.holes(), rebooted.disk_free().holes())
        << "free list out of sync at step " << steps;

    if (progress.value().done) break;
  }
  // The sweep is only meaningful if the pass actually took many bounded
  // steps (copy slices + per-hop flips across several moved files).
  EXPECT_GE(steps, 8u);
  EXPECT_GE(h.server().stats().compact_steps, steps);

  // The stepped pass left the region packed: a full-pass rerun moves 0.
  auto rerun = h.server().compact_disk();
  ASSERT_OK(testing::status_of(rerun));
  EXPECT_EQ(0u, rerun.value());
}

// Crashing with a torn write must stay safe for every single replica count
// too (no peer to heal from — only the write ordering protects you).
TEST(CrashSweepTest, SingleReplicaTornSweep) {
  CrashHarness::Options options;
  options.replicas = 1;
  CrashHarness probe(options);
  const std::uint64_t total = probe.run(CrashPlan::kNeverCrash,
                                        CrashPlan::TearMode::clean, 1);
  probe.verify_recovery();
  CrashHarness harness(options);
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE(::testing::Message() << "1-replica torn crash at " << k);
    harness.run(k, CrashPlan::TearMode::torn_bytes, /*torn_align=*/16);
    harness.verify_recovery();
  }
}

}  // namespace
}  // namespace bullet
