// Crash-point durability sweep: crash the mirror at EVERY write index the
// workload issues — clean, torn at block granularity, and torn at inode
// (16-byte) granularity — reboot from the surviving images, and hold the
// server to its durability contract. See tests/crash_harness.h for the
// checked invariants and the tear model.
#include <gtest/gtest.h>

#include "tests/crash_harness.h"

namespace bullet {
namespace {

using testing::CrashHarness;

// The workload must be big enough that the sweep means something.
constexpr std::uint64_t kMinWrites = 20;

std::uint64_t probe_total_writes() {
  CrashHarness harness;
  const std::uint64_t total = harness.run(
      CrashPlan::kNeverCrash, CrashPlan::TearMode::clean, /*torn_align=*/1);
  harness.verify_recovery();
  return total;
}

TEST(CrashSweepTest, WorkloadIsSubstantial) {
  EXPECT_GE(probe_total_writes(), kMinWrites);
}

TEST(CrashSweepTest, CleanCrashAtEveryWriteIndex) {
  const std::uint64_t total = probe_total_writes();
  CrashHarness harness;
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE(::testing::Message() << "clean crash at write " << k);
    harness.run(k, CrashPlan::TearMode::clean, /*torn_align=*/1);
    harness.verify_recovery();
  }
}

TEST(CrashSweepTest, TornBlockPrefixCrashAtEveryWriteIndex) {
  const std::uint64_t total = probe_total_writes();
  CrashHarness harness;
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE(::testing::Message() << "torn-prefix crash at write " << k);
    harness.run(k, CrashPlan::TearMode::torn_prefix, /*torn_align=*/1);
    harness.verify_recovery();
  }
}

TEST(CrashSweepTest, TornInodeGranularityCrashAtEveryWriteIndex) {
  const std::uint64_t total = probe_total_writes();
  CrashHarness harness;
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE(::testing::Message() << "torn-bytes crash at write " << k);
    harness.run(k, CrashPlan::TearMode::torn_bytes, /*torn_align=*/16);
    harness.verify_recovery();
  }
}

// Crashing with a torn write must stay safe for every single replica count
// too (no peer to heal from — only the write ordering protects you).
TEST(CrashSweepTest, SingleReplicaTornSweep) {
  CrashHarness::Options options;
  options.replicas = 1;
  CrashHarness probe(options);
  const std::uint64_t total = probe.run(CrashPlan::kNeverCrash,
                                        CrashPlan::TearMode::clean, 1);
  probe.verify_recovery();
  CrashHarness harness(options);
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE(::testing::Message() << "1-replica torn crash at " << k);
    harness.run(k, CrashPlan::TearMode::torn_bytes, /*torn_align=*/16);
    harness.verify_recovery();
  }
}

}  // namespace
}  // namespace bullet
