// Tests for capabilities: wire encoding, text encoding, rights.
#include <gtest/gtest.h>

#include "cap/capability.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

Capability sample() {
  Capability cap;
  cap.port = Port(0xA1B2C3D4E5F6ULL);
  cap.object = 1234;
  cap.rights = rights::kRead | rights::kDelete;
  cap.check = 0x0123456789ABULL;
  return cap;
}

TEST(PortTest, Masks48Bits) {
  Port p(0xFFFF'1234'5678'9ABCULL);
  EXPECT_EQ(0x1234'5678'9ABCULL, p.value());
}

TEST(PortTest, NullDetection) {
  EXPECT_TRUE(Port().is_null());
  EXPECT_FALSE(Port(1).is_null());
}

TEST(PortTest, Comparison) {
  EXPECT_EQ(Port(5), Port(5));
  EXPECT_LT(Port(4), Port(5));
}

TEST(PortTest, ToStringIsTwelveHexDigits) {
  EXPECT_EQ("0000000000ff", Port(0xFF).to_string());
  EXPECT_EQ("a1b2c3d4e5f6", Port(0xA1B2C3D4E5F6ULL).to_string());
}

TEST(CapabilityTest, WireRoundtrip) {
  const Capability cap = sample();
  Writer w;
  cap.encode(w);
  EXPECT_EQ(Capability::kWireSize, w.size());
  Reader r(w.data());
  const auto decoded = Capability::decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(cap, decoded.value());
}

TEST(CapabilityTest, DecodeTruncatedFails) {
  Writer w;
  sample().encode(w);
  Bytes wire = std::move(w).take();
  wire.pop_back();
  Reader r(wire);
  EXPECT_FALSE(Capability::decode(r).ok());
}

TEST(CapabilityTest, TextRoundtrip) {
  const Capability cap = sample();
  const auto parsed = Capability::from_string(cap.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(cap, *parsed);
}

TEST(CapabilityTest, TextRoundtripNull) {
  const Capability null;
  const auto parsed = Capability::from_string(null.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(null, *parsed);
  EXPECT_TRUE(parsed->is_null());
}

TEST(CapabilityTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(Capability::from_string("").has_value());
  EXPECT_FALSE(Capability::from_string("a:b:c").has_value());
  EXPECT_FALSE(Capability::from_string("a:b:c:d:e").has_value());
  EXPECT_FALSE(Capability::from_string("xx:yy:zz:qq").has_value());
  EXPECT_FALSE(Capability::from_string("1:2:100:3").has_value());  // rights>255
  EXPECT_FALSE(Capability::from_string("1:2:fff:3").has_value());
  EXPECT_FALSE(
      Capability::from_string("1:fffffffff:1:3").has_value());  // object>2^32
}

TEST(CapabilityTest, HasRights) {
  Capability cap;
  cap.rights = rights::kRead | rights::kWrite;
  EXPECT_TRUE(cap.has_rights(rights::kRead));
  EXPECT_TRUE(cap.has_rights(rights::kRead | rights::kWrite));
  EXPECT_FALSE(cap.has_rights(rights::kDelete));
  EXPECT_FALSE(cap.has_rights(rights::kRead | rights::kDelete));
  EXPECT_TRUE(cap.has_rights(0));
}

TEST(CapabilityTest, IsNull) {
  EXPECT_TRUE(Capability().is_null());
  EXPECT_FALSE(sample().is_null());
  Capability object_only;
  object_only.object = 1;
  EXPECT_FALSE(object_only.is_null());
}

}  // namespace
}  // namespace bullet
