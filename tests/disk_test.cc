// Tests for the block-device layer: MemDisk, FileDisk, SimDisk,
// MirroredDisk (failover, partial writes, resilver).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "disk/file_disk.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "disk/sim_disk.h"
#include "sim/testbed.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::payload;

TEST(MemDiskTest, ReadBackWhatWasWritten) {
  MemDisk disk(512, 64);
  const Bytes data = payload(1024, 1);
  ASSERT_OK(disk.write(3, data));
  Bytes out(1024);
  ASSERT_OK(disk.read(3, out));
  EXPECT_TRUE(equal(data, out));
}

TEST(MemDiskTest, FreshDiskIsZeroed) {
  MemDisk disk(512, 4);
  Bytes out(512, 0xFF);
  ASSERT_OK(disk.read(0, out));
  for (const auto b : out) EXPECT_EQ(0, b);
}

TEST(MemDiskTest, RejectsUnalignedTransfer) {
  MemDisk disk(512, 4);
  Bytes odd(100);
  EXPECT_CODE(bad_argument, disk.write(0, odd));
  EXPECT_CODE(bad_argument, disk.read(0, MutableByteSpan(odd)));
}

TEST(MemDiskTest, RejectsOutOfRange) {
  MemDisk disk(512, 4);
  Bytes block(512);
  EXPECT_CODE(bad_argument, disk.write(4, block));
  Bytes two(1024);
  EXPECT_CODE(bad_argument, disk.write(3, two));
  EXPECT_OK(disk.write(3, block));
}

TEST(MemDiskTest, FailDeviceFailsEverything) {
  MemDisk disk(512, 4);
  disk.fail_device();
  Bytes block(512);
  EXPECT_CODE(io_error, disk.write(0, block));
  EXPECT_CODE(io_error, disk.read(0, MutableByteSpan(block)));
  EXPECT_CODE(io_error, disk.flush());
  disk.clear_faults();
  EXPECT_OK(disk.write(0, block));
}

TEST(MemDiskTest, FailAfterWritesInjectsCrash) {
  MemDisk disk(512, 8);
  disk.fail_after_writes(2);
  Bytes block(512, 1);
  EXPECT_OK(disk.write(0, block));
  EXPECT_OK(disk.write(1, block));
  EXPECT_CODE(io_error, disk.write(2, block));
  EXPECT_TRUE(disk.has_failed());
}

TEST(MemDiskTest, SnapshotRestoreRoundtrip) {
  MemDisk disk(512, 8);
  ASSERT_OK(disk.write(2, payload(512, 7)));
  const Bytes image = disk.snapshot();
  MemDisk copy(512, 8);
  ASSERT_OK(copy.restore(image));
  Bytes out(512);
  ASSERT_OK(copy.read(2, out));
  EXPECT_TRUE(equal(payload(512, 7), out));
  MemDisk wrong(512, 4);
  EXPECT_CODE(bad_argument, wrong.restore(image));
}

TEST(MemDiskTest, CountsOperations) {
  MemDisk disk(512, 8);
  Bytes block(512);
  ASSERT_OK(disk.write(0, block));
  ASSERT_OK(disk.read(0, MutableByteSpan(block)));
  ASSERT_OK(disk.read(0, MutableByteSpan(block)));
  EXPECT_EQ(1u, disk.writes());
  EXPECT_EQ(2u, disk.reads());
}

// --- FileDisk ---------------------------------------------------------------

class FileDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::unique_temp_path(".img");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FileDiskTest, PersistsAcrossReopen) {
  {
    auto disk = FileDisk::open(path_, 512, 16);
    ASSERT_TRUE(disk.ok());
    ASSERT_OK(disk.value().write(5, payload(512, 3)));
    ASSERT_OK(disk.value().flush());
  }
  auto disk = FileDisk::open(path_, 512, 16);
  ASSERT_TRUE(disk.ok());
  Bytes out(512);
  ASSERT_OK(disk.value().read(5, out));
  EXPECT_TRUE(equal(payload(512, 3), out));
}

TEST_F(FileDiskTest, RejectsEmptyGeometry) {
  EXPECT_FALSE(FileDisk::open(path_, 0, 16).ok());
  EXPECT_FALSE(FileDisk::open(path_, 512, 0).ok());
}

TEST_F(FileDiskTest, MoveTransfersOwnership) {
  auto disk = FileDisk::open(path_, 512, 4);
  ASSERT_TRUE(disk.ok());
  FileDisk moved = std::move(disk).value();
  ASSERT_OK(moved.write(0, payload(512, 1)));
  FileDisk moved2 = std::move(moved);
  Bytes out(512);
  ASSERT_OK(moved2.read(0, out));
  EXPECT_TRUE(equal(payload(512, 1), out));
}

// --- SimDisk -----------------------------------------------------------------

TEST(SimDiskTest, ChargesServiceTime) {
  sim::Clock clock;
  MemDisk inner(512, 4096);
  SimDisk disk(&inner, sim::DiskParams::winchester_1989(512, 4096), &clock);
  Bytes block(512);
  ASSERT_OK(disk.read(100, MutableByteSpan(block)));
  EXPECT_GT(clock.now(), 0);
}

TEST(SimDiskTest, SequentialCheaperThanRandom) {
  sim::Clock clock;
  MemDisk inner(512, 1u << 16);
  SimDisk disk(&inner, sim::DiskParams::winchester_1989(512, 1u << 16), &clock);
  Bytes block(512);

  ASSERT_OK(disk.read(0, MutableByteSpan(block)));
  const auto t0 = clock.now();
  // Sequential follow-up: no seek, no rotational delay.
  ASSERT_OK(disk.read(1, MutableByteSpan(block)));
  const auto sequential = clock.now() - t0;
  // Far-away follow-up: seek + rotational latency.
  ASSERT_OK(disk.read(50000, MutableByteSpan(block)));
  const auto random = clock.now() - t0 - sequential;
  EXPECT_GT(random, sequential * 5);
}

TEST(SimDiskTest, DataStillLands) {
  sim::Clock clock;
  MemDisk inner(512, 64);
  SimDisk disk(&inner, sim::DiskParams::winchester_1989(512, 64), &clock);
  ASSERT_OK(disk.write(7, payload(512, 9)));
  Bytes out(512);
  ASSERT_OK(inner.read(7, out));  // visible through the wrapped device
  EXPECT_TRUE(equal(payload(512, 9), out));
}

// --- MirroredDisk ---------------------------------------------------------------

class MirrorTest : public ::testing::Test {
 protected:
  MirrorTest() : a_(512, 64), b_(512, 64) {
    auto mirror = MirroredDisk::create({&a_, &b_});
    EXPECT_TRUE(mirror.ok());
    mirror_ = std::make_unique<MirroredDisk>(std::move(mirror).value());
  }
  MemDisk a_, b_;
  std::unique_ptr<MirroredDisk> mirror_;
};

TEST_F(MirrorTest, WritesGoToAllReplicas) {
  ASSERT_OK(mirror_->write(3, payload(512, 1)));
  Bytes out(512);
  ASSERT_OK(a_.read(3, out));
  EXPECT_TRUE(equal(payload(512, 1), out));
  ASSERT_OK(b_.read(3, out));
  EXPECT_TRUE(equal(payload(512, 1), out));
}

TEST_F(MirrorTest, ReadFailsOverToSecondReplica) {
  ASSERT_OK(mirror_->write(0, payload(512, 2)));
  a_.fail_device();
  Bytes out(512);
  ASSERT_OK(mirror_->read(0, out));
  EXPECT_TRUE(equal(payload(512, 2), out));
  EXPECT_EQ(1, mirror_->healthy_count());
  EXPECT_FALSE(mirror_->is_healthy(0));
}

TEST_F(MirrorTest, WriteSurvivesOneReplicaFailure) {
  b_.fail_device();
  ASSERT_OK(mirror_->write(1, payload(512, 3)));
  EXPECT_EQ(1, mirror_->healthy_count());
  Bytes out(512);
  ASSERT_OK(mirror_->read(1, out));
  EXPECT_TRUE(equal(payload(512, 3), out));
}

TEST_F(MirrorTest, AllReplicasFailedIsError) {
  a_.fail_device();
  b_.fail_device();
  Bytes out(512);
  EXPECT_CODE(io_error, mirror_->read(0, out));
  EXPECT_CODE(io_error, mirror_->write(0, payload(512, 1)));
}

TEST_F(MirrorTest, PartialWriteHonoursLimit) {
  auto written = mirror_->write_partial(2, payload(512, 4), 1);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(1, written.value());
  // First replica has the data, second does not yet.
  Bytes out(512);
  ASSERT_OK(a_.read(2, out));
  EXPECT_TRUE(equal(payload(512, 4), out));
  ASSERT_OK(b_.read(2, out));
  EXPECT_FALSE(equal(payload(512, 4), out));
  // Completing the write brings the second replica up to date.
  ASSERT_OK(mirror_->write_remaining(2, payload(512, 4), 1));
  ASSERT_OK(b_.read(2, out));
  EXPECT_TRUE(equal(payload(512, 4), out));
}

TEST_F(MirrorTest, ResilverRestoresFailedReplica) {
  ASSERT_OK(mirror_->write(0, payload(512, 5)));
  ASSERT_OK(mirror_->write(9, payload(512, 6)));
  b_.fail_device();
  ASSERT_OK(mirror_->write(1, payload(512, 7)));  // b misses this write
  EXPECT_EQ(1, mirror_->healthy_count());

  // Operator replaces the drive and copies the whole disk.
  b_.clear_faults();
  ASSERT_OK(mirror_->resilver(1));
  EXPECT_EQ(2, mirror_->healthy_count());
  Bytes out(512);
  ASSERT_OK(b_.read(1, out));
  EXPECT_TRUE(equal(payload(512, 7), out));
  ASSERT_OK(b_.read(9, out));
  EXPECT_TRUE(equal(payload(512, 6), out));
}

TEST(MirroredDiskTest, CreateRejectsBadReplicaSets) {
  EXPECT_FALSE(MirroredDisk::create({}).ok());
  MemDisk a(512, 4);
  EXPECT_FALSE(MirroredDisk::create({&a, nullptr}).ok());
  MemDisk b(512, 8);  // geometry mismatch
  EXPECT_FALSE(MirroredDisk::create({&a, &b}).ok());
}

TEST(MirroredDiskTest, SingleReplicaWorks) {
  MemDisk a(512, 4);
  auto mirror = MirroredDisk::create({&a});
  ASSERT_TRUE(mirror.ok());
  ASSERT_OK(mirror.value().write(0, payload(512, 1)));
  Bytes out(512);
  ASSERT_OK(mirror.value().read(0, out));
  EXPECT_TRUE(equal(payload(512, 1), out));
}

TEST_F(MirrorTest, ScrubDetectsAndRepairsDivergence) {
  ASSERT_OK(mirror_->write(0, payload(512, 1)));
  ASSERT_OK(mirror_->write(5, payload(512, 2)));
  // Silent corruption on the second replica (bypassing the mirror).
  ASSERT_OK(b_.write(5, payload(512, 99)));

  auto report = mirror_->scrub(/*repair=*/false);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(64u, report.value().blocks_checked);
  EXPECT_EQ(1u, report.value().mismatched_blocks);
  EXPECT_EQ(0u, report.value().repaired_blocks);

  report = mirror_->scrub(/*repair=*/true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(1u, report.value().mismatched_blocks);
  EXPECT_EQ(1u, report.value().repaired_blocks);

  // Replica agrees with the main disk again.
  Bytes out(512);
  ASSERT_OK(b_.read(5, out));
  EXPECT_TRUE(equal(payload(512, 2), out));
  report = mirror_->scrub(false);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(0u, report.value().mismatched_blocks);
}

TEST_F(MirrorTest, ScrubSkipsFailedReplicas) {
  b_.fail_device();
  ASSERT_OK(mirror_->write(0, payload(512, 1)));  // marks b unhealthy
  auto report = mirror_->scrub(false);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(0u, report.value().mismatched_blocks);  // nothing to compare
}

TEST(MirroredDiskTest, ThreeWayMirror) {
  MemDisk a(512, 8), b(512, 8), c(512, 8);
  auto mirror = MirroredDisk::create({&a, &b, &c});
  ASSERT_TRUE(mirror.ok());
  ASSERT_OK(mirror.value().write(0, payload(512, 1)));
  a.fail_device();
  b.fail_device();
  Bytes out(512);
  ASSERT_OK(mirror.value().read(0, out));  // still served by c
  EXPECT_TRUE(equal(payload(512, 1), out));
}

}  // namespace
}  // namespace bullet
