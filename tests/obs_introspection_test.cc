// The live introspection plane end to end, as an operator uses it:
// bullet_server runs as a separate process, a workload goes over UDP via
// bullet_client, then `bullet_tool stats|top|trace` interrogates the
// daemon. Asserts the exposition text parses line by line, carries every
// registered metric, and the trace dump prints complete span chains.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tests/test_util.h"

#ifndef BULLET_TOOL_PATH
#error "BULLET_TOOL_PATH must be defined by the build"
#endif
#ifndef BULLET_SERVER_PATH
#error "BULLET_SERVER_PATH must be defined by the build"
#endif
#ifndef BULLET_CLIENT_PATH
#error "BULLET_CLIENT_PATH must be defined by the build"
#endif

namespace bullet {
namespace {

// Every metric bullet_server registers, by exposition name. The list is
// part of the tool contract (docs/PROTOCOL.md): dashboards key on these.
const char* const kCounterMetrics[] = {
    "bullet_creates_total",
    "bullet_reads_total",
    "bullet_deletes_total",
    "bullet_cache_hits_total",
    "bullet_cache_misses_total",
    "bullet_cache_evictions_total",
    "bullet_bytes_stored_total",
    "bullet_bytes_served_total",
    "bullet_files_live",
    "bullet_disk_free_bytes",
    "bullet_disk_largest_hole_bytes",
    "bullet_disk_holes",
    "bullet_cache_free_bytes",
    "bullet_healthy_replicas",
    "bullet_bytes_copied_total",
    "bullet_scratch_allocs_total",
    "bullet_evict_scans_total",
    "bullet_io_errors_total",
    "bullet_read_repairs_total",
    "bullet_failovers_total",
    "bullet_bg_write_failures_total",
    "bullet_rx_batches_total",
    "bullet_worker_wakeups_total",
    "bullet_lock_wait_ns_total",
    "bullet_pinned_evict_defers_total",
    "bullet_disk_inflight",
    "bullet_disk_queue_depth_max",
    "bullet_compact_steps_total",
    "bullet_compact_lock_hold_ns_max",
    "bullet_cache_capacity_bytes",
    "bullet_cache_used_bytes",
    "bullet_cache_entries",
    "bullet_cache_compactions_total",
    "bullet_cache_deferred_frees_total",
    "bullet_shed_pushback_total",
    "bullet_shed_dropped_total",
    "bullet_deadline_expired_total",
    "bullet_rx_queue_depth_max",
    "bullet_inflight_sheds_total",
    "bullet_repl_role",
    "bullet_repl_peer_healthy",
    "bullet_repl_pushes_total",
    "bullet_repl_push_failures_total",
    "bullet_repl_installs_total",
    "bullet_repl_resyncs_total",
    "bullet_repl_resync_files_total",
    "bullet_repl_dedup_hits_total",
};

const char* const kHistogramMetrics[] = {
    "bullet_read_latency_ns",   "bullet_create_latency_ns",
    "bullet_delete_latency_ns", "bullet_disk_read_latency_ns",
    "bullet_disk_write_latency_ns",
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string banner_field(const std::string& banner, const std::string& key) {
  const auto at = banner.find(key + ": ");
  if (at == std::string::npos) return "";
  const auto start = at + key.size() + 2;
  const auto end = banner.find('\n', start);
  return banner.substr(start, end - start);
}

// "name value" or "name{quantile=\"0.x\"} value", value an unsigned int.
bool parse_exposition_line(const std::string& line, std::string* name,
                           unsigned long long* value) {
  std::size_t i = 0;
  while (i < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[i])) != 0 ||
          line[i] == '_')) {
    ++i;
  }
  if (i == 0) return false;
  *name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    const std::size_t close = line.find('}', i);
    if (close == std::string::npos) return false;
    i = close + 1;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  ++i;
  char* end = nullptr;
  *value = std::strtoull(line.c_str() + i, &end, 10);
  return end != line.c_str() + i && *end == '\0';
}

class ObsIntrospectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    image_ = testing::unique_temp_path(".img");
    banner_ = testing::unique_temp_path("-banner.txt");
    std::remove(image_.c_str());
    std::remove((image_ + ".dircap").c_str());
  }

  void TearDown() override {
    stop_daemon();
    std::remove(image_.c_str());
    std::remove((image_ + ".dircap").c_str());
    std::remove(banner_.c_str());
  }

  int run(const std::string& command, std::string* out = nullptr) {
    const std::string capture = testing::unique_temp_path("-cmd.out");
    const int code =
        std::system((command + " > " + capture + " 2>/dev/null").c_str());
    if (out != nullptr) *out = slurp(capture);
    std::remove(capture.c_str());
    return WEXITSTATUS(code);
  }

  void start_daemon() {
    port_ = static_cast<int>(20000 + ((getpid() + 7919) % 20000));
    pid_ = fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      FILE* out = std::freopen(banner_.c_str(), "w", stdout);
      (void)out;
      FILE* err = std::freopen("/dev/null", "w", stderr);
      (void)err;
      // --trace-sample 1 traces every request so the tiny workload below
      // is guaranteed to leave chains in the sink.
      execl(BULLET_SERVER_PATH, BULLET_SERVER_PATH, "--image", image_.c_str(),
            "--port", std::to_string(port_).c_str(), "--trace-sample", "1",
            nullptr);
      _exit(127);
    }
    for (int i = 0; i < 100; ++i) {
      if (slurp(banner_).find("root-cap: ") != std::string::npos) return;
      usleep(50 * 1000);
    }
    FAIL() << "daemon did not print its banner";
  }

  void stop_daemon() {
    if (pid_ > 0) {
      kill(pid_, SIGTERM);
      int status = 0;
      waitpid(pid_, &status, 0);
      pid_ = -1;
    }
  }

  std::string tool(const std::string& args) {
    return std::string(BULLET_TOOL_PATH) + " " + args;
  }

  std::string image_;
  std::string banner_;
  int port_ = 0;
  pid_t pid_ = -1;
};

TEST_F(ObsIntrospectionTest, StatsTopAndTraceAgainstLiveDaemon) {
  ASSERT_EQ(0,
            run(tool("format " + image_ + " 8 512")));
  start_daemon();
  const std::string banner = slurp(banner_);
  const std::string bullet_cap = banner_field(banner, "bullet-cap");
  ASSERT_FALSE(bullet_cap.empty());

  // Workload over UDP: one create (put) and one read (get).
  const std::string local = testing::unique_temp_path("-payload.bin");
  {
    std::ofstream out(local, std::ios::binary);
    const Bytes data = testing::payload(20000, 3);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  const std::string client = std::string(BULLET_CLIENT_PATH) + " --port " +
                             std::to_string(port_) + " --cap " + bullet_cap;
  std::string cap_text;
  ASSERT_EQ(0, run(client + " put " + local, &cap_text));
  while (!cap_text.empty() && cap_text.back() == '\n') cap_text.pop_back();
  const std::string fetched = testing::unique_temp_path("-fetched.bin");
  ASSERT_EQ(0, run(client + " get " + cap_text + " " + fetched));
  std::remove(local.c_str());
  std::remove(fetched.c_str());

  const std::string live = std::to_string(port_) + " " + bullet_cap;

  // --- bullet_tool stats: full exposition text, line-parseable. ---
  std::string stats;
  ASSERT_EQ(0, run(tool("stats " + live), &stats));
  std::istringstream lines(stats);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string name;
    unsigned long long value = 0;
    EXPECT_TRUE(parse_exposition_line(line, &name, &value))
        << "unparseable line: " << line;
    ++parsed;
  }
  EXPECT_GE(parsed, 53u);  // 35 counters + 5 histograms x 6 lines
  for (const char* name : kCounterMetrics) {
    EXPECT_NE(std::string::npos, stats.find(std::string(name) + " "))
        << "missing metric " << name;
  }
  for (const char* name : kHistogramMetrics) {
    EXPECT_NE(std::string::npos,
              stats.find(std::string(name) + "{quantile=\"0.5\"} "))
        << "missing histogram " << name;
    EXPECT_NE(std::string::npos,
              stats.find(std::string(name) + "{quantile=\"0.99\"} "))
        << "missing histogram " << name;
    EXPECT_NE(std::string::npos, stats.find(std::string(name) + "_count "))
        << "missing histogram " << name;
  }
  // The workload is visible in the counters and the read histogram.
  {
    std::string name;
    unsigned long long creates = 0, reads = 0, read_count = 0;
    std::istringstream again(stats);
    while (std::getline(again, line)) {
      unsigned long long value = 0;
      if (!parse_exposition_line(line, &name, &value)) continue;
      if (line.rfind("bullet_creates_total ", 0) == 0) creates = value;
      if (line.rfind("bullet_reads_total ", 0) == 0) reads = value;
      if (line.rfind("bullet_read_latency_ns_count ", 0) == 0) {
        read_count = value;
      }
    }
    EXPECT_GE(creates, 1u);
    EXPECT_GE(reads, 1u);
    EXPECT_GE(read_count, 1u);
  }

  // --- bullet_tool top: rate view over a short interval. ---
  std::string top;
  ASSERT_EQ(0, run(tool("top " + live + " 0.2"), &top));
  EXPECT_NE(std::string::npos, top.find("reads/s:"));
  EXPECT_NE(std::string::npos, top.find("files live:"));

  // --- bullet_tool trace: at least one complete chain from the workload. ---
  std::string trace;
  ASSERT_EQ(0, run(tool("trace " + live + " --slow 0 --max 512"), &trace));
  EXPECT_NE(std::string::npos, trace.find("seq=")) << trace;
  EXPECT_NE(std::string::npos, trace.find("op=READ")) << trace;
  for (const char* stage : {"rx", "queue", "handle", "encode", "tx"}) {
    EXPECT_NE(std::string::npos, trace.find(stage)) << trace;
  }
  EXPECT_EQ(std::string::npos, trace.find("0 chain(s)")) << trace;

  // The dump drained the sink; with no new traffic a rerun is empty.
  std::string trace2;
  ASSERT_EQ(0, run(tool("trace " + live + " --slow 1s"), &trace2));
  EXPECT_NE(std::string::npos, trace2.find("0 chain(s), 0 span(s)")) << trace2;
}

}  // namespace
}  // namespace bullet
