// Tests for the directory server: naming, version management (atomic
// replace / compare-and-swap), persistence into Bullet files, and path
// utilities.
#include <gtest/gtest.h>

#include "dir/client.h"
#include "dir/server.h"
#include "tests/test_util.h"

namespace bullet::dir {
namespace {

using ::bullet::testing::BulletHarness;
using ::bullet::testing::payload;
using ::bullet::testing::status_of;

class DirTest : public ::testing::Test {
 protected:
  DirTest() {
    EXPECT_TRUE(transport_.register_service(&h_.server()).ok());
    BulletClient storage(&transport_, h_.server().super_capability());
    auto server = DirServer::start(storage, DirConfig());
    EXPECT_TRUE(server.ok());
    dir_server_ = std::move(server).value();
    EXPECT_TRUE(transport_.register_service(dir_server_.get()).ok());
    client_ = std::make_unique<DirClient>(&transport_,
                                          dir_server_->super_capability());
    bullet_client_ = std::make_unique<BulletClient>(
        &transport_, h_.server().super_capability());
  }

  Capability store_file(std::string_view text) {
    auto cap = bullet_client_->create(as_span(text), 1);
    EXPECT_TRUE(cap.ok());
    return cap.value_or(Capability{});
  }

  BulletHarness h_;
  rpc::LoopbackTransport transport_;
  std::unique_ptr<DirServer> dir_server_;
  std::unique_ptr<DirClient> client_;
  std::unique_ptr<BulletClient> bullet_client_;
};

TEST_F(DirTest, CreateLookupEnterRemove) {
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  const Capability file = store_file("contents");
  ASSERT_OK(client_->enter(dir.value(), "readme", file));
  auto found = client_->lookup(dir.value(), "readme");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(file, found.value());
  ASSERT_OK(client_->remove(dir.value(), "readme"));
  EXPECT_CODE(not_found, status_of(client_->lookup(dir.value(), "readme")));
}

TEST_F(DirTest, EnterDuplicateRejected) {
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  ASSERT_OK(client_->enter(dir.value(), "x", store_file("1")));
  EXPECT_CODE(already_exists,
              client_->enter(dir.value(), "x", store_file("2")));
}

TEST_F(DirTest, NameValidation) {
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  const Capability file = store_file("z");
  EXPECT_CODE(bad_argument, client_->enter(dir.value(), "", file));
  EXPECT_CODE(bad_argument, client_->enter(dir.value(), "a/b", file));
  EXPECT_CODE(bad_argument,
              client_->enter(dir.value(), std::string(300, 'a'), file));
  EXPECT_CODE(bad_argument,
              client_->enter(dir.value(), std::string("a\0b", 3), file));
}

TEST_F(DirTest, ListIsSortedAndComplete) {
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  ASSERT_OK(client_->enter(dir.value(), "zebra", store_file("z")));
  ASSERT_OK(client_->enter(dir.value(), "apple", store_file("a")));
  ASSERT_OK(client_->enter(dir.value(), "mango", store_file("m")));
  auto entries = client_->list(dir.value());
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(3u, entries.value().size());
  EXPECT_EQ("apple", entries.value()[0].name);
  EXPECT_EQ("mango", entries.value()[1].name);
  EXPECT_EQ("zebra", entries.value()[2].name);
}

TEST_F(DirTest, ReplaceReturnsOldVersion) {
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  const Capability v1 = store_file("v1");
  const Capability v2 = store_file("v2");
  ASSERT_OK(client_->enter(dir.value(), "doc", v1));
  auto old = client_->replace(dir.value(), "doc", v2);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(v1, old.value());
  EXPECT_EQ(v2, client_->lookup(dir.value(), "doc").value());
  EXPECT_CODE(not_found, status_of(client_->replace(dir.value(), "nope", v2)));
}

TEST_F(DirTest, CasReplaceDetectsLostUpdate) {
  // The paper's version model: clients race to publish new versions of an
  // immutable file; the directory's compare-and-swap decides the winner.
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  const Capability v1 = store_file("v1");
  ASSERT_OK(client_->enter(dir.value(), "doc", v1));

  const Capability from_a = store_file("a's edit of v1");
  const Capability from_b = store_file("b's edit of v1");
  // Client A publishes first.
  ASSERT_TRUE(client_->cas_replace(dir.value(), "doc", v1, from_a).ok());
  // Client B, still basing on v1, must lose.
  EXPECT_CODE(conflict,
              status_of(client_->cas_replace(dir.value(), "doc", v1, from_b)));
  EXPECT_EQ(from_a, client_->lookup(dir.value(), "doc").value());
}

TEST_F(DirTest, VersionFilesRetiredOnMutation) {
  // Every directory mutation writes a new backing Bullet file and deletes
  // the old version: the live-file count must not grow without bound.
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  const auto base_files = h_.server().live_files();
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(client_->enter(dir.value(), "f" + std::to_string(i),
                             store_file("x")));
  }
  // Each entered file is live (+20) but old directory versions are not.
  EXPECT_EQ(base_files + 20, h_.server().live_files());
}

TEST_F(DirTest, DeleteDirRequiresEmpty) {
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  ASSERT_OK(client_->enter(dir.value(), "x", store_file("1")));
  EXPECT_CODE(bad_state, client_->delete_dir(dir.value()));
  ASSERT_OK(client_->remove(dir.value(), "x"));
  ASSERT_OK(client_->delete_dir(dir.value()));
  EXPECT_CODE(no_such_object, status_of(client_->list(dir.value())));
}

TEST_F(DirTest, ForgedDirectoryCapabilityRejected) {
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  Capability forged = dir.value();
  forged.check ^= 0x40;
  EXPECT_CODE(bad_capability, status_of(client_->list(forged)));
  Capability escalate = dir.value();
  escalate.rights = rights::kRead;  // not resealed
  EXPECT_CODE(bad_capability, status_of(client_->list(escalate)));
}

TEST_F(DirTest, HierarchyAndPathResolution) {
  auto root = client_->create_dir();
  ASSERT_TRUE(root.ok());
  auto usr = client_->make_path(root.value(), "usr/local/bin");
  ASSERT_TRUE(usr.ok());
  const Capability tool = store_file("#!bullet");
  ASSERT_OK(client_->enter(usr.value(), "tool", tool));

  auto found = client_->resolve(root.value(), "usr/local/bin/tool");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(tool, found.value());
  // Tolerant of redundant slashes.
  EXPECT_EQ(tool, client_->resolve(root.value(), "usr//local/bin//tool").value());
  EXPECT_CODE(not_found, status_of(client_->resolve(root.value(), "usr/nope")));
  // make_path is idempotent.
  EXPECT_EQ(usr.value(), client_->make_path(root.value(), "usr/local/bin").value());
}

TEST_F(DirTest, SplitPath) {
  EXPECT_TRUE(split_path("").empty());
  EXPECT_TRUE(split_path("///").empty());
  const auto parts = split_path("/a//b/c/");
  ASSERT_EQ(3u, parts.size());
  EXPECT_EQ("a", parts[0]);
  EXPECT_EQ("b", parts[1]);
  EXPECT_EQ("c", parts[2]);
}

TEST_F(DirTest, CheckpointRestoreRoundtrip) {
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  const Capability file = store_file("persistent");
  ASSERT_OK(client_->enter(dir.value(), "keep", file));
  auto snapshot = client_->checkpoint();
  ASSERT_TRUE(snapshot.ok());

  // "Restart" the directory server from the snapshot (same Bullet backing).
  BulletClient storage(&transport_, h_.server().super_capability());
  DirConfig config;
  config.restore_from = snapshot.value();
  auto revived = DirServer::start(storage, config);
  ASSERT_TRUE(revived.ok());
  // Old capabilities still resolve on the revived instance (local API).
  auto found = revived.value()->lookup(dir.value(), "keep");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(file, found.value());
  EXPECT_EQ(1u, revived.value()->directory_count());
}

TEST_F(DirTest, RpcSurfaceEndToEnd) {
  // Exercise the wire path explicitly for each opcode.
  auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  ASSERT_OK(client_->enter(dir.value(), "a", store_file("1")));
  auto old = client_->replace(dir.value(), "a", store_file("2"));
  ASSERT_TRUE(old.ok());
  auto cas = client_->cas_replace(dir.value(), "a",
                                  client_->lookup(dir.value(), "a").value(),
                                  store_file("3"));
  ASSERT_TRUE(cas.ok());
  ASSERT_TRUE(client_->list(dir.value()).ok());
  ASSERT_TRUE(client_->checkpoint().ok());
  ASSERT_OK(client_->remove(dir.value(), "a"));
  ASSERT_OK(client_->delete_dir(dir.value()));
}

TEST_F(DirTest, SuperObjectIsNotADirectory) {
  const Capability super = dir_server_->super_capability();
  EXPECT_CODE(bad_argument, status_of(client_->list(super)));
  EXPECT_CODE(bad_argument,
              client_->enter(super, "x", store_file("1")));
}

}  // namespace
}  // namespace bullet::dir
