// Tests for the UNIX emulation: POSIX-shaped calls over Bullet + directory
// server, whole-file open/commit semantics, version conflicts.
#include <gtest/gtest.h>

#include "dir/server.h"
#include "tests/test_util.h"
#include "unixemu/unix_fs.h"

namespace bullet::unixemu {
namespace {

using ::bullet::testing::BulletHarness;
using ::bullet::testing::payload;
using ::bullet::testing::status_of;
namespace flags = open_flags;

class UnixFsTest : public ::testing::Test {
 protected:
  UnixFsTest() {
    EXPECT_TRUE(transport_.register_service(&h_.server()).ok());
    BulletClient storage(&transport_, h_.server().super_capability());
    auto server = dir::DirServer::start(storage, dir::DirConfig());
    EXPECT_TRUE(server.ok());
    dir_server_ = std::move(server).value();
    EXPECT_TRUE(transport_.register_service(dir_server_.get()).ok());

    auto root = dir_server_->create_dir();
    EXPECT_TRUE(root.ok());
    root_ = root.value_or(Capability{});
    fs_ = std::make_unique<UnixFs>(
        BulletClient(&transport_, h_.server().super_capability()),
        dir::DirClient(&transport_, dir_server_->super_capability()), root_);
  }

  BulletHarness h_;
  rpc::LoopbackTransport transport_;
  std::unique_ptr<dir::DirServer> dir_server_;
  Capability root_;
  std::unique_ptr<UnixFs> fs_;
};

TEST_F(UnixFsTest, CreateWriteCloseReadBack) {
  auto fd = fs_->open("notes.txt", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), as_span("hello unix\n")).ok());
  ASSERT_OK(fs_->close(fd.value()));

  auto rd = fs_->open("notes.txt", flags::kRead);
  ASSERT_TRUE(rd.ok());
  auto data = fs_->read(rd.value(), 1024);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ("hello unix\n", to_string(data.value()));
  ASSERT_OK(fs_->close(rd.value()));
  EXPECT_EQ(0u, fs_->open_files());
}

TEST_F(UnixFsTest, OpenMissingWithoutCreateFails) {
  EXPECT_CODE(not_found, status_of(fs_->open("nope", flags::kRead)));
}

TEST_F(UnixFsTest, ExclusiveCreate) {
  auto fd = fs_->open("once", flags::kWrite | flags::kCreate | flags::kExclusive);
  ASSERT_TRUE(fd.ok());
  ASSERT_OK(fs_->close(fd.value()));
  EXPECT_CODE(already_exists,
              status_of(fs_->open(
                  "once", flags::kWrite | flags::kCreate | flags::kExclusive)));
}

TEST_F(UnixFsTest, SeekAndPartialReads) {
  auto fd = fs_->open("f", flags::kRead | flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), as_span("0123456789")).ok());
  EXPECT_EQ(3u, fs_->lseek(fd.value(), 3, Whence::set).value());
  EXPECT_EQ("345", to_string(fs_->read(fd.value(), 3).value()));
  EXPECT_EQ(8u, fs_->lseek(fd.value(), 2, Whence::cur).value());
  EXPECT_EQ("89", to_string(fs_->read(fd.value(), 10).value()));
  EXPECT_EQ(7u, fs_->lseek(fd.value(), -3, Whence::end).value());
  EXPECT_FALSE(fs_->lseek(fd.value(), -100, Whence::set).ok());
  ASSERT_OK(fs_->close(fd.value()));
}

TEST_F(UnixFsTest, SparseSeekWriteZeroFills) {
  auto fd = fs_->open("sparse", flags::kRead | flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->lseek(fd.value(), 100, Whence::set).ok());
  ASSERT_TRUE(fs_->write(fd.value(), as_span("end")).ok());
  ASSERT_TRUE(fs_->lseek(fd.value(), 0, Whence::set).ok());
  auto data = fs_->read(fd.value(), 200);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(103u, data.value().size());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(0, data.value()[i]);
  ASSERT_OK(fs_->close(fd.value()));
}

TEST_F(UnixFsTest, AppendMode) {
  auto fd = fs_->open("log", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), as_span("one\n")).ok());
  ASSERT_OK(fs_->close(fd.value()));

  auto ap = fs_->open("log", flags::kWrite | flags::kAppend);
  ASSERT_TRUE(ap.ok());
  ASSERT_TRUE(fs_->write(ap.value(), as_span("two\n")).ok());
  ASSERT_OK(fs_->close(ap.value()));

  auto rd = fs_->open("log", flags::kRead);
  EXPECT_EQ("one\ntwo\n", to_string(fs_->read(rd.value(), 100).value()));
  ASSERT_OK(fs_->close(rd.value()));
}

TEST_F(UnixFsTest, TruncateOnOpenAndFtruncate) {
  auto fd = fs_->open("t", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), payload(1000, 1)).ok());
  ASSERT_OK(fs_->close(fd.value()));

  auto trunc = fs_->open("t", flags::kWrite | flags::kTruncate);
  ASSERT_TRUE(trunc.ok());
  ASSERT_OK(fs_->close(trunc.value()));
  EXPECT_EQ(0u, fs_->stat("t").value().size);

  auto fd2 = fs_->open("t", flags::kWrite);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(fs_->write(fd2.value(), payload(500, 2)).ok());
  ASSERT_OK(fs_->ftruncate(fd2.value(), 100));
  ASSERT_OK(fs_->close(fd2.value()));
  EXPECT_EQ(100u, fs_->stat("t").value().size);
}

TEST_F(UnixFsTest, EachCommitIsANewImmutableVersion) {
  auto fd = fs_->open("v", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), as_span("v1")).ok());
  ASSERT_OK(fs_->close(fd.value()));
  const Capability v1 = fs_->stat("v").value().capability;

  auto fd2 = fs_->open("v", flags::kWrite | flags::kTruncate);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(fs_->write(fd2.value(), as_span("v2")).ok());
  ASSERT_OK(fs_->close(fd2.value()));
  const Capability v2 = fs_->stat("v").value().capability;

  EXPECT_NE(v1.object, v2.object);  // genuinely a different Bullet file
  // The superseded version was deleted from the Bullet server.
  BulletClient files(&transport_, h_.server().super_capability());
  EXPECT_FALSE(files.read(v1).ok());
  EXPECT_EQ("v2", to_string(files.read_whole(v2).value()));
}

TEST_F(UnixFsTest, ConcurrentCommitConflictDetected) {
  // Two descriptors opened on the same version; the second close loses.
  auto a = fs_->open("shared", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(fs_->write(a.value(), as_span("base")).ok());
  ASSERT_OK(fs_->close(a.value()));

  auto fd1 = fs_->open("shared", flags::kRead | flags::kWrite);
  auto fd2 = fs_->open("shared", flags::kRead | flags::kWrite);
  ASSERT_TRUE(fd1.ok() && fd2.ok());
  ASSERT_TRUE(fs_->write(fd1.value(), as_span("A")).ok());
  ASSERT_TRUE(fs_->write(fd2.value(), as_span("B")).ok());
  ASSERT_OK(fs_->close(fd1.value()));
  EXPECT_CODE(conflict, fs_->close(fd2.value()));
  // The winner's contents survived.
  auto rd = fs_->open("shared", flags::kRead);
  EXPECT_EQ("Aase", to_string(fs_->read(rd.value(), 100).value()));
  ASSERT_OK(fs_->close(rd.value()));
}

TEST_F(UnixFsTest, FsyncCommitsWithoutClosing) {
  auto fd = fs_->open("fsynced", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), as_span("durable")).ok());
  ASSERT_OK(fs_->fsync(fd.value()));
  // Visible to an independent reader while still open.
  auto rd = fs_->open("fsynced", flags::kRead);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ("durable", to_string(fs_->read(rd.value(), 100).value()));
  ASSERT_OK(fs_->close(rd.value()));
  ASSERT_OK(fs_->close(fd.value()));
}

TEST_F(UnixFsTest, DirectoriesAndPaths) {
  ASSERT_OK(fs_->mkdir("home"));
  ASSERT_OK(fs_->mkdir("home/user"));
  EXPECT_CODE(already_exists, fs_->mkdir("home"));
  EXPECT_CODE(not_found, fs_->mkdir("missing/child"));

  auto fd = fs_->open("home/user/profile", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), as_span("me")).ok());
  ASSERT_OK(fs_->close(fd.value()));

  auto info = fs_->stat("home/user/profile");
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().is_directory);
  EXPECT_EQ(2u, info.value().size);
  EXPECT_TRUE(fs_->stat("home/user").value().is_directory);
  EXPECT_TRUE(fs_->stat("/").value().is_directory);

  auto names = fs_->readdir("home/user");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(1u, names.value().size());
  EXPECT_EQ("profile", names.value()[0]);

  EXPECT_CODE(bad_argument, status_of(fs_->readdir("home/user/profile")));
  EXPECT_CODE(bad_argument,
              status_of(fs_->open("home/user", flags::kRead)));
}

TEST_F(UnixFsTest, UnlinkDeletesFileAndVersion) {
  auto fd = fs_->open("gone", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), as_span("bye")).ok());
  ASSERT_OK(fs_->close(fd.value()));
  const Capability version = fs_->stat("gone").value().capability;

  ASSERT_OK(fs_->unlink("gone"));
  EXPECT_CODE(not_found, status_of(fs_->stat("gone")));
  BulletClient files(&transport_, h_.server().super_capability());
  EXPECT_FALSE(files.read(version).ok());

  EXPECT_CODE(not_found, fs_->unlink("gone"));
  ASSERT_OK(fs_->mkdir("d"));
  EXPECT_CODE(bad_argument, fs_->unlink("d"));
}

TEST_F(UnixFsTest, RmdirOnlyEmptyDirectories) {
  ASSERT_OK(fs_->mkdir("d"));
  auto fd = fs_->open("d/f", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_OK(fs_->close(fd.value()));
  EXPECT_CODE(bad_state, fs_->rmdir("d"));
  ASSERT_OK(fs_->unlink("d/f"));
  ASSERT_OK(fs_->rmdir("d"));
  EXPECT_CODE(not_found, status_of(fs_->stat("d")));
}

TEST_F(UnixFsTest, Rename) {
  auto fd = fs_->open("old", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), as_span("payload")).ok());
  ASSERT_OK(fs_->close(fd.value()));
  ASSERT_OK(fs_->mkdir("sub"));
  ASSERT_OK(fs_->rename("old", "sub/new"));
  EXPECT_CODE(not_found, status_of(fs_->stat("old")));
  auto rd = fs_->open("sub/new", flags::kRead);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ("payload", to_string(fs_->read(rd.value(), 100).value()));
  ASSERT_OK(fs_->close(rd.value()));
  EXPECT_CODE(not_found, fs_->rename("ghost", "x"));
}

TEST_F(UnixFsTest, RenameReplacesExistingFile) {
  for (const char* name : {"src.txt", "dst.txt"}) {
    auto fd = fs_->open(name, flags::kWrite | flags::kCreate);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs_->write(fd.value(), as_span(name)).ok());
    ASSERT_OK(fs_->close(fd.value()));
  }
  const Capability displaced = fs_->stat("dst.txt").value().capability;
  ASSERT_OK(fs_->rename("src.txt", "dst.txt"));
  EXPECT_CODE(not_found, status_of(fs_->stat("src.txt")));
  auto rd = fs_->open("dst.txt", flags::kRead);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ("src.txt", to_string(fs_->read(rd.value(), 100).value()));
  ASSERT_OK(fs_->close(rd.value()));
  // The displaced file's bytes were deleted from the Bullet server.
  BulletClient files(&transport_, h_.server().super_capability());
  EXPECT_FALSE(files.read(displaced).ok());
}

TEST_F(UnixFsTest, RenameOntoDirectoryRefused) {
  ASSERT_OK(fs_->mkdir("d"));
  auto fd = fs_->open("f", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_OK(fs_->close(fd.value()));
  EXPECT_CODE(already_exists, fs_->rename("f", "d"));
  EXPECT_TRUE(fs_->stat("f").ok());  // source untouched
}

TEST_F(UnixFsTest, FdHygiene) {
  EXPECT_CODE(bad_state, status_of(fs_->read(42, 10)));
  EXPECT_CODE(bad_state, fs_->close(-1));
  auto fd = fs_->open("f", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_OK(fs_->close(fd.value()));
  EXPECT_CODE(bad_state, fs_->close(fd.value()));  // double close
  // Descriptors are recycled.
  auto fd2 = fs_->open("f2", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(fd.value(), fd2.value());
  ASSERT_OK(fs_->close(fd2.value()));
}

TEST_F(UnixFsTest, ModeEnforcement) {
  auto wr = fs_->open("m", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(wr.ok());
  EXPECT_CODE(permission, status_of(fs_->read(wr.value(), 1)));
  ASSERT_OK(fs_->close(wr.value()));
  auto rd = fs_->open("m", flags::kRead);
  ASSERT_TRUE(rd.ok());
  EXPECT_CODE(permission, status_of(fs_->write(rd.value(), as_span("x"))));
  EXPECT_CODE(permission, fs_->ftruncate(rd.value(), 0));
  ASSERT_OK(fs_->close(rd.value()));
  EXPECT_CODE(bad_argument, status_of(fs_->open("m", 0)));
}

TEST_F(UnixFsTest, LargeFileRoundtrip) {
  const Bytes data = ::bullet::testing::payload(300000, 7);
  auto fd = fs_->open("big", flags::kWrite | flags::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), data).ok());
  ASSERT_OK(fs_->close(fd.value()));
  auto rd = fs_->open("big", flags::kRead);
  ASSERT_TRUE(rd.ok());
  Bytes out;
  for (;;) {
    auto chunk = fs_->read(rd.value(), 65536);
    ASSERT_TRUE(chunk.ok());
    if (chunk.value().empty()) break;
    append(out, chunk.value());
  }
  EXPECT_TRUE(equal(data, out));
  ASSERT_OK(fs_->close(rd.value()));
}

}  // namespace
}  // namespace bullet::unixemu
