// Tests for the WORM device and the version archive on top of it.
#include <gtest/gtest.h>

#include <cstdio>

#include "archive/version_archive.h"
#include "bullet/server.h"
#include "common/crc.h"
#include "disk/file_disk.h"
#include "disk/mem_disk.h"
#include "disk/worm_disk.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;
using testing::status_of;
using testing::unique_temp_path;

// --- WormDisk ----------------------------------------------------------------

TEST(WormDiskTest, WriteOnceEnforced) {
  MemDisk inner(512, 16);
  WormDisk worm(&inner);
  ASSERT_OK(worm.write(0, payload(512, 1)));
  EXPECT_CODE(bad_state, worm.write(0, payload(512, 2)));
  // Overlapping multi-block writes are refused atomically: nothing burned.
  ASSERT_OK(worm.write(4, payload(512, 3)));
  EXPECT_CODE(bad_state, worm.write(3, payload(1024, 4)));
  EXPECT_FALSE(worm.is_burned(3));
  // The original data is intact.
  Bytes out(512);
  ASSERT_OK(worm.read(0, out));
  EXPECT_TRUE(equal(payload(512, 1), out));
}

TEST(WormDiskTest, AppendAdvancesPastBurnedBlocks) {
  MemDisk inner(512, 16);
  WormDisk worm(&inner);
  auto first = worm.append(payload(1000, 1));  // blocks 0-1
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(0u, first.value());
  auto second = worm.append(payload(100, 2));  // block 2
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(2u, second.value());
  EXPECT_EQ(3u, worm.blocks_burned());
  EXPECT_EQ(13u, worm.blocks_remaining());
}

TEST(WormDiskTest, AppendRejectsWhenFull) {
  MemDisk inner(512, 4);
  WormDisk worm(&inner);
  ASSERT_TRUE(worm.append(payload(4 * 512, 1)).ok());
  EXPECT_CODE(no_space, status_of(worm.append(payload(1, 2))));
}

TEST(WormDiskTest, MarkBurnedForReopen) {
  MemDisk inner(512, 8);
  WormDisk worm(&inner);
  ASSERT_OK(worm.mark_burned(0, 3));
  EXPECT_EQ(3u, worm.append_cursor());
  EXPECT_CODE(bad_state, worm.write(1, payload(512, 1)));
  EXPECT_CODE(bad_argument, worm.mark_burned(7, 3));
}

TEST(WormDiskTest, ReadsPassThrough) {
  MemDisk inner(512, 8);
  ASSERT_OK(inner.write(5, payload(512, 9)));
  WormDisk worm(&inner);
  Bytes out(512);
  ASSERT_OK(worm.read(5, out));
  EXPECT_TRUE(equal(payload(512, 9), out));
}

// --- VersionArchive ------------------------------------------------------------

TEST(VersionArchiveTest, ArchiveAndRetrieve) {
  MemDisk inner(512, 64);
  WormDisk worm(&inner);
  auto archive = archive::VersionArchive::open(&worm);
  ASSERT_TRUE(archive.ok());

  Capability origin;
  origin.port = Port(0xAB);
  origin.object = 7;
  const Bytes v1 = payload(1200, 1);
  auto record = archive.value().archive(origin, v1);
  ASSERT_TRUE(record.ok());
  auto back = archive.value().retrieve(record.value().header_block);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(v1, back.value()));
}

TEST(VersionArchiveTest, EmptyPayloadRecord) {
  MemDisk inner(512, 16);
  WormDisk worm(&inner);
  auto archive = archive::VersionArchive::open(&worm);
  ASSERT_TRUE(archive.ok());
  auto record = archive.value().archive(Capability{}, ByteSpan{});
  ASSERT_TRUE(record.ok());
  auto back = archive.value().retrieve(record.value().header_block);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(VersionArchiveTest, ReopenScansExistingRecords) {
  MemDisk inner(512, 128);
  std::vector<std::uint64_t> handles;
  std::vector<std::uint32_t> crcs;
  {
    WormDisk worm(&inner);
    auto archive = archive::VersionArchive::open(&worm);
    ASSERT_TRUE(archive.ok());
    for (int i = 0; i < 5; ++i) {
      const Bytes data = payload(300 * static_cast<std::size_t>(i + 1), i);
      Capability origin;
      origin.object = static_cast<std::uint32_t>(i);
      auto record = archive.value().archive(origin, data);
      ASSERT_TRUE(record.ok());
      handles.push_back(record.value().header_block);
      crcs.push_back(crc32c(data));
    }
  }
  // "Reinsert the platter": fresh WormDisk + archive over the same bytes.
  WormDisk worm(&inner);
  auto archive = archive::VersionArchive::open(&worm);
  ASSERT_TRUE(archive.ok());
  ASSERT_EQ(5u, archive.value().records().size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(handles[i], archive.value().records()[i].header_block);
    auto data = archive.value().retrieve(handles[i]);
    ASSERT_TRUE(data.ok()) << i;
    EXPECT_EQ(crcs[i], crc32c(data.value())) << i;
  }
  // And the medium refuses to overwrite any of it.
  EXPECT_CODE(bad_state, worm.write(0, payload(512, 99)));
}

TEST(VersionArchiveTest, BitRotDetected) {
  MemDisk inner(512, 32);
  WormDisk worm(&inner);
  auto archive = archive::VersionArchive::open(&worm);
  ASSERT_TRUE(archive.ok());
  auto record = archive.value().archive(Capability{}, payload(800, 3));
  ASSERT_TRUE(record.ok());
  // Cosmic ray via the raw inner device (bypassing WORM protection).
  Bytes block(512);
  ASSERT_OK(inner.read(record.value().header_block + 1, block));
  block[100] ^= 0x10;
  ASSERT_OK(inner.write(record.value().header_block + 1, block));
  EXPECT_CODE(corrupt,
              status_of(archive.value().retrieve(record.value().header_block)));
}

TEST(VersionArchiveTest, FindByOrigin) {
  MemDisk inner(512, 64);
  WormDisk worm(&inner);
  auto archive = archive::VersionArchive::open(&worm);
  ASSERT_TRUE(archive.ok());
  Capability a;
  a.object = 1;
  Capability b;
  b.object = 2;
  ASSERT_TRUE(archive.value().archive(a, payload(10, 1)).ok());
  ASSERT_TRUE(archive.value().archive(b, payload(10, 2)).ok());
  ASSERT_TRUE(archive.value().archive(a, payload(10, 3)).ok());
  EXPECT_EQ(2u, archive.value().find_by_origin(a).size());
  EXPECT_EQ(1u, archive.value().find_by_origin(b).size());
  EXPECT_TRUE(archive.value().find_by_origin(Capability{}).empty());
}

TEST(VersionArchiveTest, MediumFullReported) {
  MemDisk inner(512, 8);
  WormDisk worm(&inner);
  auto archive = archive::VersionArchive::open(&worm);
  ASSERT_TRUE(archive.ok());
  // 8 blocks: header(1) + payload(6) fits; another record does not.
  ASSERT_TRUE(archive.value().archive(Capability{}, payload(6 * 512, 1)).ok());
  EXPECT_CODE(no_space,
              status_of(archive.value().archive(Capability{}, payload(1, 2))));
}

TEST(WormDiskTest, RejectsUnalignedWrites) {
  MemDisk inner(512, 8);
  WormDisk worm(&inner);
  EXPECT_CODE(bad_argument, worm.write(0, payload(100, 1)));
  EXPECT_FALSE(worm.is_burned(0));  // refused before burning anything
}

TEST(VersionArchiveTest, PersistsOnRealFile) {
  // The archival story end to end on a file-backed medium: burn, close the
  // process ("eject"), reopen from the file alone.
  const std::string path = unique_temp_path(".img");
  std::remove(path.c_str());
  std::uint64_t handle = 0;
  {
    auto disk = FileDisk::open(path, 512, 64);
    ASSERT_TRUE(disk.ok());
    WormDisk worm(&disk.value());
    auto archive = archive::VersionArchive::open(&worm);
    ASSERT_TRUE(archive.ok());
    auto record = archive.value().archive(Capability{}, payload(2000, 42));
    ASSERT_TRUE(record.ok());
    handle = record.value().header_block;
    ASSERT_OK(disk.value().flush());
  }
  auto disk = FileDisk::open(path, 512, 64);
  ASSERT_TRUE(disk.ok());
  WormDisk worm(&disk.value());
  auto archive = archive::VersionArchive::open(&worm);
  ASSERT_TRUE(archive.ok());
  ASSERT_EQ(1u, archive.value().records().size());
  auto data = archive.value().retrieve(handle);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(equal(payload(2000, 42), data.value()));
  std::remove(path.c_str());
}

// --- integration with the Bullet server ----------------------------------------

TEST(VersionArchiveTest, ArchiveSupersededBulletVersions) {
  BulletHarness h;
  MemDisk platter(512, 256);
  WormDisk worm(&platter);
  auto archive = archive::VersionArchive::open(&worm);
  ASSERT_TRUE(archive.ok());

  // Version chain: v1 -> v2 -> v3; superseded versions are burned before
  // deletion from the (expensive, magnetic) Bullet disks.
  auto v1 = h.server().create(as_span("draft"), 2);
  ASSERT_TRUE(v1.ok());
  std::vector<wire::FileEdit> edits;
  edits.push_back(wire::FileEdit::make_append(to_bytes(" + review")));
  auto v2 = h.server().create_from(v1.value(), edits, 2);
  ASSERT_TRUE(v2.ok());

  auto v1_data = h.server().read(v1.value());
  ASSERT_TRUE(v1_data.ok());
  auto burned = archive.value().archive(v1.value(), v1_data.value());
  ASSERT_TRUE(burned.ok());
  ASSERT_OK(h.server().erase(v1.value()));

  // The live server no longer has v1, the archive does — forever.
  EXPECT_FALSE(h.server().read(v1.value()).ok());
  auto recovered = archive.value().retrieve(burned.value().header_block);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ("draft", to_string(recovered.value()));
  EXPECT_EQ("draft + review",
            to_string(h.server().read(v2.value()).value()));
}

}  // namespace
}  // namespace bullet
