// Tests for disk compaction and fragmentation behaviour ("compaction every
// morning at say 3 am").
#include <gtest/gtest.h>

#include "bullet/server.h"
#include "common/crc.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;
using testing::status_of;

TEST(BulletCompactionTest, CompactEmptyDiskIsNoop) {
  BulletHarness h;
  auto moved = h.server().compact_disk();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(0u, moved.value());
}

TEST(BulletCompactionTest, CompactAlreadyContiguousIsNoop) {
  BulletHarness h;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(h.server().create(payload(1000, i), 2).ok());
  }
  auto moved = h.server().compact_disk();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(0u, moved.value());
}

TEST(BulletCompactionTest, SqueezesHolesAndPreservesData) {
  BulletHarness h;
  std::vector<Capability> caps;
  for (int i = 0; i < 10; ++i) {
    auto cap = h.server().create(payload(2000, i), 2);
    ASSERT_TRUE(cap.ok());
    caps.push_back(cap.value());
  }
  // Delete every other file, leaving holes.
  for (std::size_t i = 0; i < caps.size(); i += 2) {
    ASSERT_OK(h.server().erase(caps[i]));
  }
  const auto holes_before = h.server().disk_free().hole_count();
  EXPECT_GT(holes_before, 1u);

  auto moved = h.server().compact_disk();
  ASSERT_TRUE(moved.ok());
  EXPECT_GT(moved.value(), 0u);
  EXPECT_EQ(1u, h.server().disk_free().hole_count());

  // Survivors intact, via the server...
  for (std::size_t i = 1; i < caps.size(); i += 2) {
    auto read = h.server().read(caps[i]);
    ASSERT_TRUE(read.ok()) << i;
    EXPECT_TRUE(equal(payload(2000, i), read.value())) << i;
  }
  // ... and from a cold boot (compaction rewrote inodes write-through).
  h.reboot();
  EXPECT_EQ(0u, h.server().boot_report().repairs());
  for (std::size_t i = 1; i < caps.size(); i += 2) {
    auto read = h.server().read(caps[i]);
    ASSERT_TRUE(read.ok()) << i;
    EXPECT_TRUE(equal(payload(2000, i), read.value())) << i;
  }
}

TEST(BulletCompactionTest, CreateCompactsWhenFragmentationBlocks) {
  // Carve the small data region into alternating live/dead extents so no
  // hole fits the final request, then watch create() compact and succeed.
  BulletHarness::Options options;
  options.disk_blocks = 128;  // 64 KB disk
  options.inode_slots = 32;
  BulletHarness h(options);
  const std::uint64_t bs = h.options().block_size;

  std::vector<Capability> caps;
  for (;;) {
    auto cap = h.server().create(payload(8 * bs, caps.size()), 2);
    if (!cap.ok()) break;
    caps.push_back(cap.value());
  }
  ASSERT_GE(caps.size(), 4u);
  for (std::size_t i = 0; i < caps.size(); i += 2) {
    ASSERT_OK(h.server().erase(caps[i]));
  }
  const std::uint64_t free_blocks = h.server().disk_free().total_free();
  const std::uint64_t largest = h.server().disk_free().largest_hole();
  ASSERT_GT(free_blocks, largest);  // fragmented

  // Ask for more than the largest hole but less than the total free space.
  const std::uint64_t want_blocks = largest + 4;
  ASSERT_LE(want_blocks, free_blocks);
  auto cap = h.server().create(payload(want_blocks * bs, 777), 2);
  ASSERT_TRUE(cap.ok()) << cap.error().to_string();
  EXPECT_TRUE(equal(payload(want_blocks * bs, 777),
                    h.server().read(cap.value()).value()));
  // Remaining originals intact.
  for (std::size_t i = 1; i < caps.size(); i += 2) {
    EXPECT_TRUE(equal(payload(8 * bs, i), h.server().read(caps[i]).value()));
  }
}

TEST(BulletCompactionTest, FragmentationStatsExposed) {
  BulletHarness h;
  auto a = h.server().create(payload(1024, 1), 2);
  auto b = h.server().create(payload(1024, 2), 2);
  auto c = h.server().create(payload(1024, 3), 2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_OK(h.server().erase(b.value()));
  const auto stats = h.server().stats();
  EXPECT_GE(stats.disk_holes, 2u);
  EXPECT_GT(stats.disk_free_bytes, stats.disk_largest_hole_bytes);
}

TEST(BulletCompactionTest, CachedFilesUnaffectedByDiskMoves) {
  // Compaction moves disk extents; cached copies must keep serving and the
  // moved disk locations must match what the cache had.
  BulletHarness::Options options;
  options.cache_bytes = 1 << 20;
  BulletHarness h(options);
  auto a = h.server().create(payload(3000, 1), 2);
  auto b = h.server().create(payload(3000, 2), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_OK(h.server().erase(a.value()));
  ASSERT_TRUE(h.server().compact_disk().ok());
  // b is still cached; read it (hit), then force a cold read after reboot.
  const auto crc_cached = crc32c(h.server().read(b.value()).value());
  h.reboot();
  const auto crc_disk = crc32c(h.server().read(b.value()).value());
  EXPECT_EQ(crc_cached, crc_disk);
}

}  // namespace
}  // namespace bullet
