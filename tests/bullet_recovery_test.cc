// Crash-recovery, startup consistency checks (fsck), replica failover, and
// resilvering for the Bullet server.
#include <gtest/gtest.h>

#include "bullet/server.h"
#include "common/crc.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;
using testing::status_of;

TEST(BulletRecoveryTest, FilesSurviveReboot) {
  BulletHarness h;
  std::vector<Capability> caps;
  std::vector<std::uint32_t> crcs;
  for (int i = 0; i < 20; ++i) {
    const Bytes data = payload(200 + 37 * static_cast<std::size_t>(i), i);
    auto cap = h.server().create(data, 2);
    ASSERT_TRUE(cap.ok());
    caps.push_back(cap.value());
    crcs.push_back(crc32c(data));
  }
  h.reboot();
  for (std::size_t i = 0; i < caps.size(); ++i) {
    auto read = h.server().read(caps[i]);
    ASSERT_TRUE(read.ok()) << i;
    EXPECT_EQ(crcs[i], crc32c(read.value())) << i;
  }
  EXPECT_EQ(20u, h.server().live_files());
}

TEST(BulletRecoveryTest, DeletionsSurviveReboot) {
  BulletHarness h;
  auto keep = h.server().create(payload(100, 1), 2);
  auto drop = h.server().create(payload(100, 2), 2);
  ASSERT_TRUE(keep.ok() && drop.ok());
  ASSERT_OK(h.server().erase(drop.value()));
  h.reboot();
  EXPECT_TRUE(h.server().read(keep.value()).ok());
  EXPECT_FALSE(h.server().read(drop.value()).ok());
  EXPECT_EQ(1u, h.server().live_files());
}

TEST(BulletRecoveryTest, FreeListRebuiltExactly) {
  BulletHarness h;
  auto a = h.server().create(payload(3000, 1), 2);
  auto b = h.server().create(payload(3000, 2), 2);
  auto c = h.server().create(payload(3000, 3), 2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_OK(h.server().erase(b.value()));  // leaves a hole
  const auto free_before = h.server().disk_free().total_free();
  const auto holes_before = h.server().disk_free().hole_count();
  h.reboot();
  EXPECT_EQ(free_before, h.server().disk_free().total_free());
  EXPECT_EQ(holes_before, h.server().disk_free().hole_count());
}

TEST(BulletRecoveryTest, CapabilitiesRemainValidAcrossReboot) {
  // The random number lives in the inode, so a reboot must not invalidate
  // outstanding capabilities — and forged ones must still fail.
  BulletHarness h;
  auto cap = h.server().create(payload(64, 7), 2);
  ASSERT_TRUE(cap.ok());
  h.reboot();
  EXPECT_TRUE(h.server().read(cap.value()).ok());
  Capability forged = cap.value();
  forged.check ^= 0x800;
  EXPECT_CODE(bad_capability, status_of(h.server().read(forged)));
}

TEST(BulletRecoveryTest, PfactorOneFileSurvivesCrashOfUnsyncedReplica) {
  // With P-FACTOR=1 the client resumes after one disk holds the file; the
  // second replica is written behind the reply. In the synchronous harness
  // both end up written, so crash the *second* replica before its copy and
  // verify the first alone can serve the file.
  BulletHarness h;
  h.disk(1).fail_after_writes(0);  // replica 1 dies at its next write
  auto cap = h.server().create(payload(5000, 3), 1);
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(1, h.mirror().healthy_count());
  auto read = h.server().read(cap.value());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(equal(payload(5000, 3), read.value()));
}

TEST(BulletRecoveryTest, PfactorIsAHardGuarantee) {
  // With one replica already dead, a P-FACTOR=2 create cannot meet its
  // contract: it must fail cleanly, leaving no file behind.
  BulletHarness h;
  h.disk(1).fail_device();
  (void)h.server().read(h.server().super_capability());  // any op is fine
  auto cap = h.server().create(payload(2000, 1), 2);
  EXPECT_CODE(io_error, status_of(cap));
  EXPECT_EQ(0u, h.server().live_files());
  // P-FACTOR=1 still succeeds on the survivor.
  auto ok_cap = h.server().create(payload(2000, 2), 1);
  ASSERT_TRUE(ok_cap.ok());
  EXPECT_TRUE(equal(payload(2000, 2), h.server().read(ok_cap.value()).value()));
  // After the undo, a reboot from the survivor is clean.
  h.disk(0).clear_faults();
  h.reboot();
  EXPECT_EQ(0u, h.server().boot_report().repairs());
  EXPECT_EQ(1u, h.server().live_files());
}

TEST(BulletRecoveryTest, CrashMidCreateLeavesConsistentDisk) {
  // Fail the devices part-way through a create: the file may or may not
  // exist after reboot, but the disk must pass its consistency checks and
  // previously stored files must be intact.
  for (std::uint64_t survive_writes = 0; survive_writes < 6;
       ++survive_writes) {
    BulletHarness h;
    auto stable = h.server().create(payload(2000, 11), 2);
    ASSERT_TRUE(stable.ok());

    h.disk(0).fail_after_writes(survive_writes);
    h.disk(1).fail_after_writes(survive_writes);
    (void)h.server().create(payload(4000, 12), 2);  // may fail — that's fine

    // "Reboot": clear the injected faults and restart from the images.
    h.disk(0).clear_faults();
    h.disk(1).clear_faults();
    h.reboot();

    EXPECT_EQ(0u, h.server().boot_report().repairs())
        << "writes=" << survive_writes;
    auto read = h.server().read(stable.value());
    ASSERT_TRUE(read.ok()) << "writes=" << survive_writes;
    EXPECT_TRUE(equal(payload(2000, 11), read.value()));
  }
}

TEST(BulletRecoveryTest, FsckClearsOutOfBoundsInode) {
  BulletHarness h;
  auto good = h.server().create(payload(600, 1), 2);
  auto bad = h.server().create(payload(600, 2), 2);
  ASSERT_TRUE(good.ok() && bad.ok());

  // Corrupt the second file's inode on both replicas: point it beyond the
  // data region.
  const auto& layout = h.server().layout();
  const std::uint32_t object = bad.value().object;
  const std::uint64_t block = layout.inode_device_block(object);
  const std::uint32_t offset = layout.inode_offset_in_block(object);
  for (int replica = 0; replica < 2; ++replica) {
    Bytes raw(layout.block_size());
    ASSERT_OK(h.disk(replica).read(block, raw));
    Inode inode = Inode::decode(ByteSpan(raw.data() + offset, Inode::kDiskSize));
    inode.first_block = 0xFFFFFF;  // far past the device
    inode.encode(MutableByteSpan(raw.data() + offset, Inode::kDiskSize));
    ASSERT_OK(h.disk(replica).write(block, raw));
  }

  h.reboot();
  EXPECT_EQ(1u, h.server().boot_report().cleared_bad_bounds);
  EXPECT_FALSE(h.server().read(bad.value()).ok());
  EXPECT_TRUE(h.server().read(good.value()).ok());
  // The repair was written back: a second reboot is clean.
  h.reboot();
  EXPECT_EQ(0u, h.server().boot_report().repairs());
}

TEST(BulletRecoveryTest, FsckClearsOverlappingInodes) {
  BulletHarness h;
  auto a = h.server().create(payload(2048, 1), 2);
  auto b = h.server().create(payload(2048, 2), 2);
  ASSERT_TRUE(a.ok() && b.ok());

  // Make b's inode claim a's blocks.
  const auto& layout = h.server().layout();
  const std::uint32_t object_a = a.value().object;
  const std::uint32_t object_b = b.value().object;
  const std::uint64_t block = layout.inode_device_block(object_b);
  const std::uint32_t offset_b = layout.inode_offset_in_block(object_b);
  // Read a's first block from its inode.
  Bytes raw(layout.block_size());
  ASSERT_OK(h.disk(0).read(layout.inode_device_block(object_a), raw));
  const Inode inode_a = Inode::decode(ByteSpan(
      raw.data() + layout.inode_offset_in_block(object_a), Inode::kDiskSize));

  for (int replica = 0; replica < 2; ++replica) {
    Bytes blk(layout.block_size());
    ASSERT_OK(h.disk(replica).read(block, blk));
    Inode inode_b =
        Inode::decode(ByteSpan(blk.data() + offset_b, Inode::kDiskSize));
    inode_b.first_block = inode_a.first_block;  // overlap!
    inode_b.encode(MutableByteSpan(blk.data() + offset_b, Inode::kDiskSize));
    ASSERT_OK(h.disk(replica).write(block, blk));
  }

  h.reboot();
  EXPECT_EQ(1u, h.server().boot_report().cleared_overlaps);
  // Exactly one of the two survives, with intact data.
  const bool a_alive = h.server().read(a.value()).ok();
  const bool b_alive = h.server().read(b.value()).ok();
  EXPECT_NE(a_alive, b_alive);
  EXPECT_EQ(0u, h.server().check_consistency().cleared_overlaps);
}

TEST(BulletRecoveryTest, StaleCacheIndexClearedAtBoot) {
  BulletHarness h;
  auto cap = h.server().create(payload(100, 5), 2);
  ASSERT_TRUE(cap.ok());
  // Write a bogus cache index into the on-disk inode.
  const auto& layout = h.server().layout();
  const std::uint64_t block = layout.inode_device_block(cap.value().object);
  const std::uint32_t offset =
      layout.inode_offset_in_block(cap.value().object);
  for (int replica = 0; replica < 2; ++replica) {
    Bytes raw(layout.block_size());
    ASSERT_OK(h.disk(replica).read(block, raw));
    Inode inode = Inode::decode(ByteSpan(raw.data() + offset, Inode::kDiskSize));
    inode.cache_index = 999;
    inode.encode(MutableByteSpan(raw.data() + offset, Inode::kDiskSize));
    ASSERT_OK(h.disk(replica).write(block, raw));
  }
  h.reboot();
  EXPECT_EQ(1u, h.server().boot_report().cleared_cache_fields);
  // Not a repair — the file is fine.
  EXPECT_EQ(0u, h.server().boot_report().repairs());
  EXPECT_TRUE(equal(payload(100, 5), h.server().read(cap.value()).value()));
}

TEST(BulletRecoveryTest, ServesFromSecondReplicaWhenMainDies) {
  BulletHarness::Options options;
  options.cache_bytes = 2048;  // small cache to force disk reads
  BulletHarness h(options);
  auto a = h.server().create(payload(1500, 1), 2);
  auto b = h.server().create(payload(1500, 2), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  // Fill the cache with b, then kill the main disk and read a (cache miss).
  ASSERT_TRUE(h.server().read(b.value()).ok());
  h.disk(0).fail_device();
  auto read = h.server().read(a.value());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(equal(payload(1500, 1), read.value()));
  EXPECT_EQ(1u, h.server().stats().healthy_replicas);
}

TEST(BulletRecoveryTest, ResilverRestoresRedundancy) {
  BulletHarness::Options options;
  options.cache_bytes = 2048;
  BulletHarness h(options);
  auto a = h.server().create(payload(1500, 1), 2);
  ASSERT_TRUE(a.ok());
  h.disk(1).fail_device();
  auto b = h.server().create(payload(1500, 2), 1);  // replica 1 misses this
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(1, h.mirror().healthy_count());

  h.disk(1).clear_faults();
  ASSERT_OK(h.mirror().resilver(1));
  EXPECT_EQ(2, h.mirror().healthy_count());

  // Now replica 0 dies; everything must still be served (from replica 1).
  // Evict cached copies first by rebooting.
  h.reboot();
  h.disk(0).fail_device();
  EXPECT_TRUE(equal(payload(1500, 1), h.server().read(a.value()).value()));
  EXPECT_TRUE(equal(payload(1500, 2), h.server().read(b.value()).value()));
}

TEST(BulletRecoveryTest, BootReportCountsFiles) {
  BulletHarness h;
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(h.server().create(payload(100, i), 2).ok());
  }
  h.reboot();
  EXPECT_EQ(7u, h.server().boot_report().files);
  EXPECT_EQ(0u, h.server().boot_report().repairs());
}

}  // namespace
}  // namespace bullet
