// Tests for the log server: O(1) appends, extent chaining, persistence,
// commit-point semantics, snapshots to Bullet files.
#include <gtest/gtest.h>

#include "bullet/server.h"
#include "common/crc.h"
#include "logsvc/client.h"
#include "logsvc/server.h"
#include "tests/test_util.h"

namespace bullet::logsvc {
namespace {

using ::bullet::testing::BulletHarness;
using ::bullet::testing::payload;
using ::bullet::testing::status_of;

class LogTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBlockSize = 512;
  static constexpr std::uint64_t kBlocks = 4096;  // 2 MB

  LogTest() : disk_(kBlockSize, kBlocks) {
    EXPECT_TRUE(LogServer::format(disk_, 64).ok());
    boot();
  }

  void boot() {
    server_.reset();
    auto server = LogServer::start(&disk_, LogConfig());
    ASSERT_TRUE(server.ok()) << server.error().to_string();
    server_ = std::move(server).value();
  }

  MemDisk disk_;
  std::unique_ptr<LogServer> server_;
};

TEST_F(LogTest, CreateAppendRead) {
  auto log = server_->create_log();
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(0u, server_->log_size(log.value()).value());
  auto size = server_->append(log.value(), as_span("hello "));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(6u, size.value());
  size = server_->append(log.value(), as_span("world"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(11u, size.value());
  auto data = server_->read_range(log.value(), 0, 11);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ("hello world", to_string(data.value()));
  auto mid = server_->read_range(log.value(), 6, 5);
  EXPECT_EQ("world", to_string(mid.value()));
}

TEST_F(LogTest, AppendIsNotWholeFileCopy) {
  // The reason the server exists: appending to a grown log touches O(append)
  // disk blocks, not O(log size).
  auto log = server_->create_log();
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(server_->append(log.value(), payload(200000, 1)).ok());
  const auto writes_before = disk_.writes();
  ASSERT_TRUE(server_->append(log.value(), as_span("tick")).ok());
  // Tail data block + log-table block, possibly one extent header: <= 4.
  EXPECT_LE(disk_.writes() - writes_before, 4u);
}

TEST_F(LogTest, AppendsSpanExtentBoundaries) {
  auto log = server_->create_log();
  ASSERT_TRUE(log.ok());
  const std::uint64_t extent_bytes = kExtentDataBlocks * kBlockSize;
  Bytes expected;
  Rng rng(5);
  std::uint64_t total = 0;
  while (total < extent_bytes * 3) {
    Bytes chunk(rng.next_range(1, 3000));
    rng.fill(chunk);
    ASSERT_TRUE(server_->append(log.value(), chunk).ok());
    append(expected, chunk);
    total += chunk.size();
  }
  auto data = server_->read_range(log.value(), 0, total);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(crc32c(expected), crc32c(data.value()));
}

TEST_F(LogTest, ReadRangeClampsToEnd) {
  auto log = server_->create_log();
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(server_->append(log.value(), as_span("abc")).ok());
  auto over = server_->read_range(log.value(), 1, 100);
  ASSERT_TRUE(over.ok());
  EXPECT_EQ("bc", to_string(over.value()));
  auto past = server_->read_range(log.value(), 10, 5);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past.value().empty());
}

TEST_F(LogTest, PersistsAcrossRestart) {
  auto log = server_->create_log();
  ASSERT_TRUE(log.ok());
  const Bytes data = payload(100000, 2);
  ASSERT_TRUE(server_->append(log.value(), data).ok());
  boot();
  EXPECT_EQ(1u, server_->logs_live());
  auto read = server_->read_range(log.value(), 0, 100000);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(crc32c(data), crc32c(read.value()));
}

TEST_F(LogTest, SizeIsTheCommitPoint) {
  // Crash after the data write but before the log-table write: the append
  // must simply have not happened after recovery.
  auto log = server_->create_log();
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(server_->append(log.value(), as_span("committed")).ok());

  // Appending "LOST" writes: tail data block first, then the table block.
  // Allow exactly one more write, so the data lands but the size does not.
  disk_.fail_after_writes(1);
  EXPECT_FALSE(server_->append(log.value(), as_span("LOST")).ok());

  disk_.clear_faults();
  boot();
  EXPECT_EQ(9u, server_->log_size(log.value()).value());
  EXPECT_EQ("committed",
            to_string(server_->read_range(log.value(), 0, 9).value()));
}

TEST_F(LogTest, DeleteFreesExtents) {
  const auto free_before = server_->free_extents();
  auto log = server_->create_log();
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(server_->append(log.value(), payload(100000, 1)).ok());
  EXPECT_LT(server_->free_extents(), free_before);
  ASSERT_OK(server_->delete_log(log.value()));
  EXPECT_EQ(free_before, server_->free_extents());
  EXPECT_CODE(no_such_object, status_of(server_->log_size(log.value())));
}

TEST_F(LogTest, ManyIndependentLogs) {
  std::vector<Capability> logs;
  for (int i = 0; i < 10; ++i) {
    auto log = server_->create_log();
    ASSERT_TRUE(log.ok());
    logs.push_back(log.value());
  }
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      const std::string line =
          "log" + std::to_string(i) + " round" + std::to_string(round) + "\n";
      ASSERT_TRUE(server_->append(logs[static_cast<std::size_t>(i)],
                                  as_span(line))
                      .ok());
    }
  }
  for (int i = 0; i < 10; ++i) {
    auto data = server_->read_range(logs[static_cast<std::size_t>(i)], 0,
                                    1 << 20);
    ASSERT_TRUE(data.ok());
    const std::string text = to_string(data.value());
    EXPECT_NE(std::string::npos,
              text.find("log" + std::to_string(i) + " round4"));
    EXPECT_EQ(std::string::npos, text.find("log" + std::to_string(i == 0 ? 1 : 0)
                                           + " round0"))
        << "cross-log contamination";
  }
}

TEST_F(LogTest, CapabilityProtection) {
  auto log = server_->create_log();
  ASSERT_TRUE(log.ok());
  Capability forged = log.value();
  forged.check += 1;
  EXPECT_CODE(bad_capability, status_of(server_->append(forged, as_span("x"))));
  EXPECT_CODE(bad_argument,
              status_of(server_->append(server_->super_capability(),
                                        as_span("x"))));
}

TEST_F(LogTest, ExtentExhaustionReported) {
  auto log = server_->create_log();
  ASSERT_TRUE(log.ok());
  // The 2 MB disk has a bounded number of extents; writing far beyond it
  // must fail with no_space, and committed data must stay intact.
  Status last = Status::success();
  std::uint64_t committed = 0;
  for (int i = 0; i < 200; ++i) {
    auto size = server_->append(log.value(), payload(32 * 1024, i));
    if (!size.ok()) {
      last = Status(size.error());
      break;
    }
    committed = size.value();
  }
  EXPECT_CODE(no_space, last);
  EXPECT_EQ(committed, server_->log_size(log.value()).value());
}

TEST_F(LogTest, ClientAndSnapshotToBullet) {
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(server_.get()));
  BulletHarness bullet_harness;
  ASSERT_OK(transport.register_service(&bullet_harness.server()));

  LogClient client(&transport, server_->super_capability());
  BulletClient storage(&transport,
                       bullet_harness.server().super_capability());

  auto log = client.create_log();
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 50; ++i) {
    const std::string line = "event " + std::to_string(i) + "\n";
    ASSERT_TRUE(client.append(log.value(), as_span(line)).ok());
  }
  auto all = client.read_all(log.value());
  ASSERT_TRUE(all.ok());

  // Archive the live log into an immutable Bullet file.
  auto archive = client.snapshot(log.value(), storage, 2);
  ASSERT_TRUE(archive.ok());
  auto archived = storage.read_whole(archive.value());
  ASSERT_TRUE(archived.ok());
  EXPECT_TRUE(equal(all.value(), archived.value()));

  ASSERT_OK(client.sync());
  ASSERT_OK(client.delete_log(log.value()));
}

}  // namespace
}  // namespace bullet::logsvc
