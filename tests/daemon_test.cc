// End-to-end test of the deployable binaries: bullet_tool formats an
// image, the bullet_server daemon serves it over UDP, bullet_client talks
// to it from another process, and directory state survives a daemon
// restart. This is the full operator story from docs/OPERATIONS.md, run as
// a regression test.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "tests/test_util.h"

#ifndef BULLET_TOOL_PATH
#error "BULLET_TOOL_PATH must be defined by the build"
#endif
#ifndef BULLET_SERVER_PATH
#error "BULLET_SERVER_PATH must be defined by the build"
#endif
#ifndef BULLET_CLIENT_PATH
#error "BULLET_CLIENT_PATH must be defined by the build"
#endif

namespace bullet {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Extract "key: value" from the daemon's banner.
std::string banner_field(const std::string& banner, const std::string& key) {
  const auto at = banner.find(key + ": ");
  if (at == std::string::npos) return "";
  const auto start = at + key.size() + 2;
  const auto end = banner.find('\n', start);
  return banner.substr(start, end - start);
}

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    image_ = testing::unique_temp_path(".img");
    banner_ = testing::unique_temp_path("-banner.txt");
    std::remove(image_.c_str());
    std::remove((image_ + ".dircap").c_str());
  }

  void TearDown() override {
    stop_daemon();
    std::remove(image_.c_str());
    std::remove((image_ + ".dircap").c_str());
    std::remove(banner_.c_str());
  }

  int run(const std::string& command, std::string* out = nullptr) {
    const std::string capture = testing::unique_temp_path("-cmd.out");
    const int code =
        std::system((command + " > " + capture + " 2>/dev/null").c_str());
    if (out != nullptr) *out = slurp(capture);
    std::remove(capture.c_str());
    return WEXITSTATUS(code);
  }

  // Start the daemon (kernel-assigned... we must pick a port; use a fixed
  // high port varied by pid to avoid collisions between test runs).
  void start_daemon() {
    port_ = static_cast<int>(20000 + (getpid() % 20000));
    pid_ = fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      // Child: exec the daemon with stdout redirected to the banner file.
      FILE* out = std::freopen(banner_.c_str(), "w", stdout);
      (void)out;
      FILE* err = std::freopen("/dev/null", "w", stderr);
      (void)err;
      execl(BULLET_SERVER_PATH, BULLET_SERVER_PATH, "--image", image_.c_str(),
            "--port", std::to_string(port_).c_str(), nullptr);
      _exit(127);  // exec failed
    }
    // Parent: wait for the banner to appear.
    for (int i = 0; i < 100; ++i) {
      if (slurp(banner_).find("root-cap: ") != std::string::npos) return;
      usleep(50 * 1000);
    }
    FAIL() << "daemon did not print its banner";
  }

  void stop_daemon() {
    if (pid_ > 0) {
      kill(pid_, SIGTERM);
      int status = 0;
      waitpid(pid_, &status, 0);
      pid_ = -1;
    }
  }

  std::string client(const std::string& args) {
    return std::string(BULLET_CLIENT_PATH) + " --port " +
           std::to_string(port_) + " " + args;
  }

  std::string image_;
  std::string banner_;
  int port_ = 0;
  pid_t pid_ = -1;
};

TEST_F(DaemonTest, FullOperatorWorkflowWithRestart) {
  // Provision.
  ASSERT_EQ(0, run(std::string(BULLET_TOOL_PATH) + " format " + image_ +
                   " 8 512"));
  start_daemon();
  const std::string banner = slurp(banner_);
  const std::string bullet_cap = banner_field(banner, "bullet-cap");
  const std::string dir_cap = banner_field(banner, "dir-cap");
  const std::string root_cap = banner_field(banner, "root-cap");
  ASSERT_FALSE(bullet_cap.empty());
  ASSERT_FALSE(root_cap.empty());

  // put a file over the network, name it, read it back by path.
  const std::string local = testing::unique_temp_path("-payload.bin");
  {
    std::ofstream out(local, std::ios::binary);
    const Bytes data = testing::payload(30000, 9);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  std::string cap_text;
  ASSERT_EQ(0, run(client("--cap " + bullet_cap + " put " + local),
                   &cap_text));
  std::remove(local.c_str());
  while (!cap_text.empty() && cap_text.back() == '\n') cap_text.pop_back();
  ASSERT_TRUE(Capability::from_string(cap_text).has_value()) << cap_text;

  // Binding under a nonexistent intermediate directory is refused...
  EXPECT_NE(0, run(client("--dir " + dir_cap + " --root " + root_cap +
                          " name data/blob " + cap_text)));
  // ... and a flat binding succeeds.
  ASSERT_EQ(0, run(client("--dir " + dir_cap + " --root " + root_cap +
                          " name blob " + cap_text)));
  std::string fetched;
  ASSERT_EQ(0, run(client("--dir " + dir_cap + " --root " + root_cap +
                          " cat blob"),
                   &fetched));
  EXPECT_EQ(crc32c(testing::payload(30000, 9)), crc32c(as_span(fetched)));

  // stats over the network.
  std::string stats;
  ASSERT_EQ(0, run(client("--cap " + bullet_cap + " stats"), &stats));
  EXPECT_NE(std::string::npos, stats.find("files: "));

  // Clean restart: names and bytes survive.
  stop_daemon();
  start_daemon();
  const std::string banner2 = slurp(banner_);
  EXPECT_EQ(root_cap, banner_field(banner2, "root-cap"));
  std::string fetched2;
  ASSERT_EQ(0, run(client("--dir " + dir_cap + " --root " + root_cap +
                          " cat blob"),
                   &fetched2));
  EXPECT_EQ(fetched.size(), fetched2.size());

  // Offline fsck of the image after a clean shutdown must be clean.
  stop_daemon();
  std::string fsck;
  EXPECT_EQ(0, run(std::string(BULLET_TOOL_PATH) + " fsck " + image_, &fsck));
  EXPECT_NE(std::string::npos, fsck.find("0 overlaps cleared"));
}

}  // namespace
}  // namespace bullet
