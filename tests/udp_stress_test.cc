// Concurrency stress over the real UDP transport: several client threads
// hammer one server simultaneously, in both server execution modes. With
// workers = 0 the RX thread executes requests inline (serialized, the
// paper's single-threaded architecture); with a worker pool, requests from
// different clients execute concurrently and the server's internal locking
// carries the consistency guarantees. Running the same storm in both modes
// pins the claim that they are observably equivalent (and TSAN turns the
// worker-mode run into a data-race check).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bullet/client.h"
#include "bullet/server.h"
#include "common/crc.h"
#include "rpc/udp_transport.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;

void run_mixed_op_storm(unsigned workers) {
  BulletHarness::Options options;
  options.disk_blocks = 1 << 14;  // 8 MB per replica
  options.inode_slots = 2048;
  BulletHarness h(options);
  rpc::UdpServerOptions server_options;
  server_options.workers = workers;
  auto udp = rpc::UdpServer::start(server_options);
  ASSERT_TRUE(udp.ok());
  ASSERT_OK(udp.value()->register_service(&h.server()));
  h.server().attach_io_counters(&udp.value()->io_counters());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> creates_confirmed{0};

  auto worker = [&](int thread_id) {
    rpc::UdpClientOptions client_options;
    client_options.server_udp_port = udp.value()->port();
    client_options.timeout_ms = 1000;
    auto transport = rpc::UdpTransport::connect(client_options);
    if (!transport.ok()) {
      ++failures;
      return;
    }
    BulletClient client(transport.value().get(),
                        h.server().super_capability());
    Rng rng(static_cast<std::uint64_t>(thread_id) * 1000 + 7);
    std::vector<std::pair<Capability, std::uint32_t>> mine;  // cap, crc
    for (int op = 0; op < kOpsPerThread; ++op) {
      const std::uint64_t dice = rng.next_below(100);
      if (mine.empty() || dice < 45) {
        Bytes data(rng.next_range(1, 8000));
        rng.fill(data);
        auto cap = client.create(data, 1);
        if (!cap.ok()) {
          ++failures;
          continue;
        }
        mine.emplace_back(cap.value(), crc32c(data));
        ++creates_confirmed;
      } else if (dice < 85) {
        const auto& [cap, crc] = mine[rng.next_below(mine.size())];
        auto data = client.read(cap);
        if (!data.ok() || crc32c(data.value()) != crc) ++failures;
      } else {
        const auto pick = rng.next_below(mine.size());
        if (!client.erase(mine[pick].first).ok()) ++failures;
        mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    // Final verification of everything this thread still owns.
    for (const auto& [cap, crc] : mine) {
      auto data = client.read(cap);
      if (!data.ok() || crc32c(data.value()) != crc) ++failures;
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(creates_confirmed.load(), h.server().stats().creates);
  EXPECT_EQ(0u, h.server().check_consistency().repairs());
  if (workers > 0) {
    EXPECT_GT(h.server().stats().worker_wakeups, 0u);
  }
  udp.value()->stop();

  // Disk state is sound after the storm.
  h.reboot();
  EXPECT_EQ(0u, h.server().boot_report().repairs());
}

TEST(UdpStressTest, ParallelClientsKeepTheServerConsistent) {
  run_mixed_op_storm(/*workers=*/0);
}

TEST(UdpStressTest, ParallelClientsKeepTheServerConsistentWorkerPool) {
  run_mixed_op_storm(/*workers=*/4);
}

void run_large_transfer_storm(unsigned workers) {
  // Threads moving multi-fragment messages concurrently: fragment
  // reassembly keyed by (peer, message id) must never mix streams.
  BulletHarness h;
  rpc::UdpServerOptions server_options;
  server_options.workers = workers;
  auto udp = rpc::UdpServer::start(server_options);
  ASSERT_TRUE(udp.ok());
  ASSERT_OK(udp.value()->register_service(&h.server()));

  std::atomic<int> failures{0};
  auto worker = [&](std::uint64_t seed) {
    rpc::UdpClientOptions client_options;
    client_options.server_udp_port = udp.value()->port();
    client_options.timeout_ms = 2000;
    auto transport = rpc::UdpTransport::connect(client_options);
    if (!transport.ok()) {
      ++failures;
      return;
    }
    BulletClient client(transport.value().get(),
                        h.server().super_capability());
    Rng rng(seed);
    for (int i = 0; i < 8; ++i) {
      Bytes data(100 * 1024);  // ~7 fragments each way
      rng.fill(data);
      auto cap = client.create(data, 1);
      if (!cap.ok()) {
        ++failures;
        continue;
      }
      auto back = client.read(cap.value());
      if (!back.ok() || !equal(data, back.value())) ++failures;
      if (!client.erase(cap.value()).ok()) ++failures;
    }
  };
  std::thread a(worker, 1), b(worker, 2);
  a.join();
  b.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0u, h.server().live_files());
  udp.value()->stop();
}

TEST(UdpStressTest, InterleavedLargeTransfers) {
  run_large_transfer_storm(/*workers=*/0);
}

TEST(UdpStressTest, InterleavedLargeTransfersWorkerPool) {
  run_large_transfer_storm(/*workers=*/2);
}

}  // namespace
}  // namespace bullet
