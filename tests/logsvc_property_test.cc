// Randomized property test for the log server: interleaved appends and
// range reads over several logs checked against byte-string oracles, with
// server restarts sprinkled through the run.
#include <gtest/gtest.h>

#include "common/crc.h"
#include "logsvc/server.h"
#include "tests/test_util.h"

namespace bullet::logsvc {
namespace {

using ::bullet::testing::payload;

class LogPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogPropertyTest, RandomOpsMatchOracle) {
  MemDisk disk(512, 8192);  // 4 MB
  ASSERT_OK(LogServer::format(disk, 32));
  auto started = LogServer::start(&disk, LogConfig());
  ASSERT_TRUE(started.ok());
  auto server = std::move(started).value();
  const std::uint32_t all_free = server->free_extents();

  Rng rng(GetParam());
  struct OracleLog {
    Capability cap;
    Bytes contents;
  };
  std::vector<OracleLog> logs;

  for (int step = 0; step < 300; ++step) {
    const std::uint64_t dice = rng.next_below(100);
    if (logs.empty() || dice < 10) {
      auto log = server->create_log();
      if (log.ok()) logs.push_back({log.value(), {}});
      continue;
    }
    OracleLog& log = logs[rng.next_below(logs.size())];
    if (dice < 55) {
      Bytes chunk(rng.next_below(6000));
      rng.fill(chunk);
      auto size = server->append(log.cap, chunk);
      if (!size.ok()) {
        EXPECT_EQ(ErrorCode::no_space, size.code());
        continue;
      }
      append(log.contents, chunk);
      EXPECT_EQ(log.contents.size(), size.value());
    } else if (dice < 85) {
      const std::uint64_t offset =
          rng.next_below(log.contents.size() + 100);
      const std::uint64_t length = rng.next_below(8000) + 1;
      auto read = server->read_range(log.cap, offset, length);
      ASSERT_TRUE(read.ok());
      Bytes expected;
      if (offset < log.contents.size()) {
        const std::uint64_t n =
            std::min(length, log.contents.size() - offset);
        expected.assign(
            log.contents.begin() + static_cast<std::ptrdiff_t>(offset),
            log.contents.begin() + static_cast<std::ptrdiff_t>(offset + n));
      }
      ASSERT_TRUE(equal(expected, read.value())) << "step " << step;
    } else if (dice < 92) {
      EXPECT_EQ(log.contents.size(), server->log_size(log.cap).value());
    } else {
      // Restart the server: all logs must come back intact.
      server.reset();
      auto revived = LogServer::start(&disk, LogConfig());
      ASSERT_TRUE(revived.ok()) << "step " << step;
      server = std::move(revived).value();
      for (const OracleLog& check : logs) {
        EXPECT_EQ(check.contents.size(),
                  server->log_size(check.cap).value_or(~0ull));
      }
    }
  }

  // Final sweep: every log byte-identical after one more restart.
  server.reset();
  auto revived = LogServer::start(&disk, LogConfig());
  ASSERT_TRUE(revived.ok());
  server = std::move(revived).value();
  EXPECT_EQ(logs.size(), server->logs_live());
  for (const OracleLog& log : logs) {
    auto data = server->read_range(log.cap, 0, log.contents.size() + 1);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(crc32c(log.contents), crc32c(data.value()));
  }

  // Delete everything: every extent returns to the free pool (including
  // any extents allocated by appends that later failed with no_space).
  for (const OracleLog& log : logs) {
    ASSERT_OK(server->delete_log(log.cap));
  }
  EXPECT_EQ(all_free, server->free_extents());
  EXPECT_EQ(0u, server->logs_live());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogPropertyTest,
                         ::testing::Values(51, 52, 53, 54));

}  // namespace
}  // namespace bullet::logsvc
