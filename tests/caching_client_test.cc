// Tests for client-side caching of immutable files.
#include <gtest/gtest.h>

#include "bullet/caching_client.h"
#include "dir/server.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;
using testing::status_of;

class CachingClientTest : public ::testing::Test {
 protected:
  CachingClientTest() {
    EXPECT_TRUE(transport_.register_service(&h_.server()).ok());
    BulletClient storage(&transport_, h_.server().super_capability());
    auto server = dir::DirServer::start(storage, dir::DirConfig());
    EXPECT_TRUE(server.ok());
    dir_server_ = std::move(server).value();
    EXPECT_TRUE(transport_.register_service(dir_server_.get()).ok());

    auto root = dir_server_->create_dir();
    EXPECT_TRUE(root.ok());
    root_ = root.value_or(Capability{});
    client_ = std::make_unique<CachingBulletClient>(
        BulletClient(&transport_, h_.server().super_capability()),
        dir::DirClient(&transport_, dir_server_->super_capability()),
        /*capacity_bytes=*/64 * 1024);
  }

  std::uint64_t server_reads() { return h_.server().stats().reads; }

  BulletHarness h_;
  rpc::LoopbackTransport transport_;
  std::unique_ptr<dir::DirServer> dir_server_;
  Capability root_;
  std::unique_ptr<CachingBulletClient> client_;
};

TEST_F(CachingClientTest, RepeatReadsSkipTheNetwork) {
  auto cap = client_->underlying().create(payload(5000, 1), 1);
  ASSERT_TRUE(cap.ok());
  const auto reads0 = server_reads();
  for (int i = 0; i < 5; ++i) {
    auto data = client_->read(cap.value());
    ASSERT_TRUE(data.ok());
    EXPECT_TRUE(equal(payload(5000, 1), data.value()));
  }
  // Only the first read reached the server.
  EXPECT_EQ(reads0 + 1, server_reads());
  EXPECT_EQ(4u, client_->stats().hits);
  EXPECT_EQ(1u, client_->stats().misses);
}

TEST_F(CachingClientTest, CreatePopulatesCache) {
  auto cap = client_->create(payload(800, 2), 1);
  ASSERT_TRUE(cap.ok());
  const auto reads0 = server_reads();
  ASSERT_TRUE(client_->read(cap.value()).ok());
  EXPECT_EQ(reads0, server_reads());  // zero server reads
}

TEST_F(CachingClientTest, NameValidationDetectsNewVersion) {
  auto v1 = client_->create(as_span("v1"), 1);
  ASSERT_TRUE(v1.ok());
  dir::DirClient names(&transport_, dir_server_->super_capability());
  ASSERT_OK(names.enter(root_, "doc", v1.value()));

  // First named read: validation + cache fill.
  EXPECT_EQ("v1", to_string(client_->read_name(root_, "doc").value()));
  // Second: validation (cheap) + cache hit (no file transfer).
  const auto reads0 = server_reads();
  EXPECT_EQ("v1", to_string(client_->read_name(root_, "doc").value()));
  EXPECT_EQ(reads0, server_reads());

  // Publish v2 under the same name; the next named read must see it.
  auto v2 = client_->create(as_span("v2"), 1);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(names.replace(root_, "doc", v2.value()).ok());
  EXPECT_EQ("v2", to_string(client_->read_name(root_, "doc").value()));
  EXPECT_EQ(3u, client_->stats().validations);
}

TEST_F(CachingClientTest, EraseDropsCachedCopy) {
  auto cap = client_->create(payload(100, 3), 1);
  ASSERT_TRUE(cap.ok());
  ASSERT_OK(client_->erase(cap.value()));
  EXPECT_CODE(no_such_object, status_of(client_->read(cap.value())));
  EXPECT_EQ(0u, client_->bytes_cached());
}

TEST_F(CachingClientTest, CapacityEnforcedWithLru) {
  // 64 KB capacity; three 30 KB files cannot all stay.
  std::vector<Capability> caps;
  for (int i = 0; i < 3; ++i) {
    auto cap = client_->underlying().create(payload(30 * 1024, i), 1);
    ASSERT_TRUE(cap.ok());
    caps.push_back(cap.value());
  }
  ASSERT_TRUE(client_->read(caps[0]).ok());  // miss, cached
  ASSERT_TRUE(client_->read(caps[1]).ok());  // miss, cached
  ASSERT_TRUE(client_->read(caps[0]).ok());  // hit (refresh LRU)
  ASSERT_TRUE(client_->read(caps[2]).ok());  // miss, evicts caps[1]
  EXPECT_GT(client_->stats().evictions, 0u);
  const auto reads0 = server_reads();
  ASSERT_TRUE(client_->read(caps[0]).ok());  // still cached
  EXPECT_EQ(reads0, server_reads());
  ASSERT_TRUE(client_->read(caps[1]).ok());  // was evicted -> server read
  EXPECT_EQ(reads0 + 1, server_reads());
  EXPECT_LE(client_->bytes_cached(), 64u * 1024);
}

TEST_F(CachingClientTest, OversizedObjectsBypassCache) {
  auto cap = client_->underlying().create(payload(100 * 1024, 9), 1);
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(client_->read(cap.value()).ok());
  EXPECT_EQ(0u, client_->bytes_cached());  // never admitted
  ASSERT_TRUE(client_->read(cap.value()).ok());
  EXPECT_EQ(2u, client_->stats().misses);
}

TEST_F(CachingClientTest, ClearEmptiesEverything) {
  auto cap = client_->create(payload(1000, 4), 1);
  ASSERT_TRUE(cap.ok());
  EXPECT_GT(client_->bytes_cached(), 0u);
  client_->clear();
  EXPECT_EQ(0u, client_->bytes_cached());
  const auto reads0 = server_reads();
  ASSERT_TRUE(client_->read(cap.value()).ok());
  EXPECT_EQ(reads0 + 1, server_reads());
}

TEST_F(CachingClientTest, DistinctRightsAreDistinctKeys) {
  // Two capabilities for the same object but different sealed rights are
  // different cache keys (conservative; both still read correctly).
  auto cap = client_->underlying().create(payload(64, 5), 1);
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(client_->read(cap.value()).ok());
  Capability other = cap.value();
  other.rights = rights::kRead;
  other.check ^= 0xF;  // not properly sealed: the server must refuse
  EXPECT_FALSE(client_->read(other).ok());
}

}  // namespace
}  // namespace bullet
