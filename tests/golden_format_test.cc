// Golden-format regression tests: the byte layouts documented in
// docs/PROTOCOL.md, pinned exactly. If one of these fails, a change broke
// compatibility with existing disk images or peers — either revert it or
// bump the format magic and update the documentation.
#include <gtest/gtest.h>

#include "bullet/layout.h"
#include "bullet/server.h"
#include "cap/capability.h"
#include "common/hex.h"
#include "crypto/speck.h"
#include "nfsbase/layout.h"
#include "rpc/message.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

Capability golden_capability() {
  Capability cap;
  cap.port = Port(0x0000A1B2C3D4E5ULL);
  cap.object = 0x01020304;
  cap.rights = 0xA5;
  cap.check = 0x0000FEDCBA9876ULL;
  return cap;
}

TEST(GoldenFormatTest, CapabilityWireBytes) {
  Writer w;
  golden_capability().encode(w);
  // port LE48 | object LE32 | rights u8 | check LE48
  EXPECT_EQ("e5d4c3b2a10004030201a57698badcfe00", hex_encode(w.data()));
}

TEST(GoldenFormatTest, CapabilityTextForm) {
  EXPECT_EQ("00a1b2c3d4e5:1020304:a5:00fedcba9876",
            golden_capability().to_string());
}

TEST(GoldenFormatTest, RequestWireBytes) {
  rpc::Request request;
  request.target = golden_capability();
  request.opcode = 0x0B0A;
  request.body = Bytes{0xDE, 0xAD};
  // capability(17) | opcode LE16 | length LE32 | body
  EXPECT_EQ("e5d4c3b2a10004030201a57698badcfe00" "0a0b" "02000000" "dead",
            hex_encode(request.encode()));
}

TEST(GoldenFormatTest, ReplyWireBytes) {
  rpc::Reply reply = rpc::Reply::error(ErrorCode::no_space);
  EXPECT_EQ("0300" "00000000", hex_encode(reply.encode()));
}

TEST(GoldenFormatTest, BulletInodeBytes) {
  Inode inode;
  inode.random = 0x0000112233445566ULL;  // only low 48 bits persist
  inode.cache_index = 0x0708;
  inode.first_block = 0x0A0B0C0D;
  inode.size_bytes = 0x01020304;
  Bytes raw(Inode::kDiskSize);
  inode.encode(raw);
  EXPECT_EQ("665544332211" "0807" "0d0c0b0a" "04030201", hex_encode(raw));
}

TEST(GoldenFormatTest, BulletDescriptorBytes) {
  DiskDescriptor desc;
  desc.block_size = 512;
  desc.control_blocks = 32;
  desc.data_blocks = 4064;
  Bytes raw(DiskDescriptor::kDiskSize);
  desc.encode(raw);
  // magic "BLT1" = 0x424C5431 stored LE
  EXPECT_EQ("31544c42" "00020000" "20000000" "e00f0000", hex_encode(raw));
}

TEST(GoldenFormatTest, FormattedImageIsStable) {
  // A freshly formatted Bullet disk has a deterministic image; pin its
  // checksum so format() changes are deliberate.
  MemDisk disk(512, 256);
  ASSERT_OK(BulletServer::format(disk, 64));
  EXPECT_EQ(crc32c(disk.snapshot()), [] {
    // Compute the expected value from first principles: descriptor block +
    // zeroed remainder. (This keeps the test self-explanatory while still
    // pinning the exact bytes.)
    Bytes image(512 * 256, 0);
    DiskDescriptor desc;
    desc.block_size = 512;
    desc.control_blocks = 2;  // 64 slots * 16 B = 1024 B = 2 blocks
    desc.data_blocks = 254;
    desc.encode(MutableByteSpan(image.data(), DiskDescriptor::kDiskSize));
    return crc32c(image);
  }());
}

TEST(GoldenFormatTest, NfsSuperblockBytes) {
  nfsbase::Superblock sb;
  sb.block_size = 8192;
  sb.total_blocks = 1024;
  sb.bitmap_blocks = 1;
  sb.inode_blocks = 2;
  sb.inode_count = 128;
  sb.data_start = 4;
  Bytes raw(nfsbase::Superblock::kDiskSize);
  sb.encode(raw);
  EXPECT_EQ("3153464e" "00200000" "00040000" "01000000" "02000000"
            "80000000" "04000000" "00000000",
            hex_encode(raw));
}

TEST(GoldenFormatTest, SpeckSealIsStable) {
  // The check-field function must never change: every stored inode random
  // seals outstanding capabilities with it. Pinned value computed once and
  // fixed forever.
  const Speck64::Key key{0x00, 0x01, 0x02, 0x03, 0x08, 0x09, 0x0a, 0x0b,
                         0x10, 0x11, 0x12, 0x13, 0x18, 0x19, 0x1a, 0x1b};
  CheckSealer sealer(key);
  EXPECT_EQ(0x128febbbe306ULL, sealer.seal(rights::kAll, 0x123456789ABCULL));
}

TEST(GoldenFormatTest, PortDerivationIsStable) {
  // The default Bullet config's public port, as printed by the tools and
  // stored in clients' bootstrap files. Pinned.
  EXPECT_EQ(0xC94DE57C3B19ULL, derive_public_port(0x1B55));
  BulletConfig config;
  EXPECT_EQ(0xC94DE57C3B19ULL, derive_public_port(config.private_port));
}

}  // namespace
}  // namespace bullet
