// Tests for the discrete-event substrate: clock, disk model, network model.
#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/disk_model.h"
#include "sim/net_model.h"
#include "sim/testbed.h"

namespace bullet::sim {
namespace {

TEST(ClockTest, AdvancesMonotonically) {
  Clock clock;
  EXPECT_EQ(0, clock.now());
  clock.advance(from_ms(1));
  clock.advance(from_us(5));
  EXPECT_EQ(from_ms(1) + from_us(5), clock.now());
}

TEST(ClockTest, IgnoresNonPositive) {
  Clock clock;
  clock.advance(0);
  clock.advance(-100);
  EXPECT_EQ(0, clock.now());
}

TEST(ClockTest, BackgroundSectionDoesNotMoveNow) {
  Clock clock;
  clock.advance(from_ms(1));
  {
    BackgroundSection bg(&clock);
    clock.advance(from_ms(100));
  }
  EXPECT_EQ(from_ms(1), clock.now());
  EXPECT_EQ(from_ms(100), clock.background_total());
}

TEST(ClockTest, NestedBackgroundSections) {
  Clock clock;
  {
    BackgroundSection outer(&clock);
    {
      BackgroundSection inner(&clock);
      clock.advance(from_ms(2));
    }
    clock.advance(from_ms(3));
  }
  clock.advance(from_ms(5));
  EXPECT_EQ(from_ms(5), clock.now());
  EXPECT_EQ(from_ms(5), clock.background_total());
}

TEST(ClockTest, BackgroundSectionToleratesNull) {
  BackgroundSection bg(nullptr);  // must not crash
}

TEST(ClockTest, ResetClearsEverything) {
  Clock clock;
  clock.advance(from_ms(1));
  {
    BackgroundSection bg(&clock);
    clock.advance(from_ms(1));
  }
  clock.reset();
  EXPECT_EQ(0, clock.now());
  EXPECT_EQ(0, clock.background_total());
}

TEST(DurationTest, Conversions) {
  EXPECT_EQ(1000000, from_ms(1.0));
  EXPECT_EQ(1000, from_us(1.0));
  EXPECT_DOUBLE_EQ(1.5, to_ms(from_ms(1.5)));
  EXPECT_DOUBLE_EQ(0.001, to_seconds(from_ms(1.0)));
}

// --- DiskModel ---------------------------------------------------------------

TEST(DiskModelTest, SequentialAccessSkipsPositioning) {
  Clock clock;
  DiskModel model(DiskParams::winchester_1989(512, 1 << 20), &clock);
  model.access(100, 8);  // seek there
  const auto after_first = clock.now();
  model.access(108, 8);  // head is already at 108
  const auto sequential_cost = clock.now() - after_first;
  // Sequential: overhead + transfer only.
  const auto& p = model.params();
  const Duration expected =
      p.per_request_overhead +
      static_cast<Duration>(8 * 512 / p.media_rate_bytes_per_sec * 1e9);
  EXPECT_NEAR(static_cast<double>(sequential_cost),
              static_cast<double>(expected), 1000.0);
  EXPECT_EQ(1u, model.seeks());
}

TEST(DiskModelTest, LongerSeeksCostMore) {
  Clock clock;
  const auto params = DiskParams::winchester_1989(512, 1 << 20);

  DiskModel near_model(params, &clock);
  near_model.access(0, 1);
  const auto base = clock.now();
  near_model.access(100, 1);
  const auto near_cost = clock.now() - base;

  clock.reset();
  DiskModel far_model(params, &clock);
  far_model.access(0, 1);
  const auto base2 = clock.now();
  far_model.access(1 << 19, 1);
  const auto far_cost = clock.now() - base2;

  EXPECT_GT(far_cost, near_cost);
}

TEST(DiskModelTest, TransferScalesWithSize) {
  Clock clock;
  DiskModel model(DiskParams::winchester_1989(512, 1 << 20), &clock);
  model.access(0, 1);
  const auto t1 = clock.now();
  model.access(1, 2048);  // sequential, 1 MB
  const auto big = clock.now() - t1;
  // 1 MB at 1.5 MB/s is ~0.7 s.
  EXPECT_GT(big, from_ms(600));
  EXPECT_LT(big, from_ms(800));
}

TEST(DiskModelTest, PreviewDoesNotCharge) {
  Clock clock;
  DiskModel model(DiskParams::winchester_1989(512, 1 << 20), &clock);
  const Duration preview = model.preview(5000, 4);
  EXPECT_GT(preview, 0);
  EXPECT_EQ(0, clock.now());
  EXPECT_EQ(0u, model.requests());
}

TEST(DiskModelTest, StatsAccumulate) {
  Clock clock;
  DiskModel model(DiskParams::winchester_1989(512, 1 << 20), &clock);
  model.access(0, 4);     // head parks at 0: first access is sequential
  model.access(4, 4);     // sequential
  model.access(5000, 2);  // seek
  model.access(100, 2);   // seek back
  EXPECT_EQ(4u, model.requests());
  EXPECT_EQ(2u, model.seeks());
  EXPECT_EQ(12u * 512, model.total_bytes_moved());
}

TEST(DiskModelTest, RotationalNumbersAreSane) {
  const auto p = DiskParams::winchester_1989(512, 1);
  EXPECT_NEAR(16.67, to_ms(p.full_rotation()), 0.1);        // 3600 rpm
  EXPECT_NEAR(8.33, to_ms(p.avg_rotational_latency()), 0.1);
}

// --- NetModel -------------------------------------------------------------------

TEST(NetModelTest, EmptyMessageStillCostsAPacket) {
  const auto net = NetParams::ethernet_10mbit();
  EXPECT_GT(net.message_time(0), 0);
}

TEST(NetModelTest, PacketizationSteps) {
  const auto net = NetParams::ethernet_10mbit();
  // One packet up to the MTU payload, two beyond it.
  const auto one = net.message_time(net.mtu_payload);
  const auto two = net.message_time(net.mtu_payload + 1);
  EXPECT_GT(two - one, net.per_packet_cpu);
}

TEST(NetModelTest, BulkApproachesWireRate) {
  const auto net = NetParams::ethernet_10mbit();
  const std::uint64_t mb = 1 << 20;
  const double seconds = to_seconds(net.message_time(mb));
  const double throughput = static_cast<double>(mb) / seconds;
  // Must be below the 1.25 MB/s wire rate but in its neighbourhood.
  EXPECT_LT(throughput, 1.25e6);
  EXPECT_GT(throughput, 0.7e6);
}

TEST(NetModelTest, RpcTimeIncludesBothDirections) {
  const auto net = NetParams::ethernet_10mbit();
  const auto costs = ProtocolCosts::amoeba_rpc_1989();
  const auto small = rpc_time(net, costs, 64, 64);
  const auto big_reply = rpc_time(net, costs, 64, 1 << 20);
  const auto big_request = rpc_time(net, costs, 1 << 20, 64);
  EXPECT_GT(big_reply, small);
  // Symmetric cost model: request and reply bytes are priced identically.
  EXPECT_EQ(big_reply, big_request);
}

TEST(NetModelTest, NullRpcLatencyMatchesAmoeba) {
  // The Amoeba RPC of the era measured ~1.2-1.4 ms for a null RPC between
  // two 68020s; the preset should land in that neighbourhood (well under
  // the ~10 ms of the SunOS NFS stack).
  const auto t = rpc_time(NetParams::ethernet_10mbit(),
                          ProtocolCosts::amoeba_rpc_1989(), 24, 6);
  EXPECT_GT(to_ms(t), 1.0);
  EXPECT_LT(to_ms(t), 3.0);
}

TEST(NetModelTest, NfsStackCostsMoreThanAmoeba) {
  const auto net = NetParams::ethernet_10mbit();
  const auto amoeba = rpc_time(net, ProtocolCosts::amoeba_rpc_1989(), 64, 64);
  const auto nfs = rpc_time(net, ProtocolCosts::sun_nfs_1989(), 64, 64);
  EXPECT_GT(nfs, amoeba * 3);
}

TEST(TestbedTest, PresetsAreConsistent) {
  EXPECT_EQ(512u, Testbed1989::disk().block_size);
  EXPECT_EQ(Testbed1989::kDiskBytes,
            Testbed1989::disk().total_blocks * Testbed1989::kSectorSize);
  EXPECT_EQ(8192u, Testbed1989::nfs_disk().block_size);
  EXPECT_GT(Testbed1989::nfs_costs().service_cpu,
            Testbed1989::bullet_costs().service_cpu);
}

}  // namespace
}  // namespace bullet::sim
