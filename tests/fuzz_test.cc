// Deterministic fuzzing of the wire surfaces: random and mutated bytes fed
// to every decoder and every service dispatcher. The property is simple —
// no crash, no hang, and server state stays consistent no matter what
// arrives on the wire.
#include <gtest/gtest.h>

#include "bullet/server.h"
#include "dir/server.h"
#include "logsvc/server.h"
#include "nfsbase/server.h"
#include "rpc/message.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

using testing::BulletHarness;
using testing::payload;

TEST(FuzzTest, RequestDecoderSurvivesGarbage) {
  Rng rng(0xF122);
  for (int i = 0; i < 5000; ++i) {
    Bytes junk(rng.next_below(200));
    rng.fill(junk);
    (void)rpc::Request::decode(junk);  // must not crash
    (void)rpc::Reply::decode(junk);
  }
}

TEST(FuzzTest, RequestDecoderSurvivesTruncations) {
  rpc::Request request;
  request.target.port = Port(0x1234);
  request.opcode = wire::kCreate;
  request.body = payload(300, 1);
  const Bytes wire_bytes = request.encode();
  for (std::size_t cut = 0; cut < wire_bytes.size(); ++cut) {
    Bytes truncated(wire_bytes.begin(),
                    wire_bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    (void)rpc::Request::decode(truncated);
  }
}

TEST(FuzzTest, CapabilityParserSurvivesGarbage) {
  Rng rng(0xF123);
  for (int i = 0; i < 5000; ++i) {
    std::string text;
    const std::size_t n = rng.next_below(60);
    for (std::size_t j = 0; j < n; ++j) {
      text.push_back(static_cast<char>(rng.next_range(32, 126)));
    }
    (void)Capability::from_string(text);
  }
}

// Feed a dispatcher random opcodes with random bodies and verify the
// server still works afterwards.
template <typename Server>
void fuzz_dispatch(Server& server, const Capability& valid_target,
                   std::uint64_t seed, int rounds) {
  Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    rpc::Request request;
    // Mix of valid target, mutated target, and random target.
    const std::uint64_t kind = rng.next_below(3);
    if (kind == 0) {
      request.target = valid_target;
    } else if (kind == 1) {
      request.target = valid_target;
      request.target.check ^= rng.next() & kMask48;
      request.target.object ^= static_cast<std::uint32_t>(rng.next_below(16));
    } else {
      request.target.port = Port(rng.next());
      request.target.object = static_cast<std::uint32_t>(rng.next());
      request.target.rights = static_cast<std::uint8_t>(rng.next());
      request.target.check = rng.next() & kMask48;
    }
    request.opcode = static_cast<std::uint16_t>(rng.next_below(20));
    request.body.resize(rng.next_below(300));
    rng.fill(request.body);
    const rpc::Reply reply = server.handle(request);  // must not crash
    (void)reply;
  }
}

TEST(FuzzTest, BulletDispatcherSurvives) {
  BulletHarness h;
  auto cap = h.server().create(payload(1000, 1), 1);
  ASSERT_TRUE(cap.ok());
  fuzz_dispatch(h.server(), h.server().super_capability(), 0xB011, 4000);
  // Server state still consistent; legitimate requests still served.
  EXPECT_EQ(0u, h.server().check_consistency().repairs());
  EXPECT_TRUE(equal(payload(1000, 1), h.server().read(cap.value()).value()));
  // Reboot works and the disks pass fsck.
  h.reboot();
  EXPECT_EQ(0u, h.server().boot_report().repairs());
}

TEST(FuzzTest, DirDispatcherSurvives) {
  BulletHarness h;
  rpc::LoopbackTransport transport;
  ASSERT_OK(transport.register_service(&h.server()));
  BulletClient storage(&transport, h.server().super_capability());
  auto dir_server = dir::DirServer::start(storage, dir::DirConfig());
  ASSERT_TRUE(dir_server.ok());
  auto root = dir_server.value()->create_dir();
  ASSERT_TRUE(root.ok());
  auto file = storage.create(as_span("keep"), 1);
  ASSERT_TRUE(file.ok());
  ASSERT_OK(dir_server.value()->enter(root.value(), "keep", file.value()));

  fuzz_dispatch(*dir_server.value(), dir_server.value()->super_capability(),
                0xD122, 4000);
  auto still = dir_server.value()->lookup(root.value(), "keep");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(file.value(), still.value());
}

TEST(FuzzTest, NfsDispatcherSurvives) {
  MemDisk disk(8192, 256);
  ASSERT_OK(nfsbase::NfsServer::format(disk, 32));
  auto server = nfsbase::NfsServer::start(&disk, nfsbase::NfsConfig());
  ASSERT_TRUE(server.ok());
  auto handle = server.value()->create("keep");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(server.value()->write(handle.value(), 0, payload(5000, 1)).ok());

  fuzz_dispatch(*server.value(), server.value()->super_capability(), 0x4F5,
                4000);
  auto read = server.value()->read(handle.value(), 0, 5000);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(equal(payload(5000, 1), read.value()));
}

TEST(FuzzTest, LogDispatcherSurvives) {
  MemDisk disk(512, 1024);
  ASSERT_OK(logsvc::LogServer::format(disk, 16));
  auto server = logsvc::LogServer::start(&disk, logsvc::LogConfig());
  ASSERT_TRUE(server.ok());
  auto log = server.value()->create_log();
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(server.value()->append(log.value(), as_span("entry")).ok());

  fuzz_dispatch(*server.value(), server.value()->super_capability(), 0x10C,
                4000);
  EXPECT_EQ(5u, server.value()->log_size(log.value()).value());
}

TEST(FuzzTest, DirectoryFileDecoderSurvivesGarbage) {
  Rng rng(0xD1F);
  for (int i = 0; i < 3000; ++i) {
    Bytes junk(rng.next_below(400));
    rng.fill(junk);
    (void)dir::decode_directory(junk);
  }
}

TEST(FuzzTest, EditScriptsSurviveGarbageOffsets) {
  Rng rng(0xED17);
  const Bytes base = payload(500, 1);
  for (int i = 0; i < 3000; ++i) {
    std::vector<wire::FileEdit> edits;
    const std::size_t count = rng.next_below(4) + 1;
    for (std::size_t j = 0; j < count; ++j) {
      wire::FileEdit edit;
      edit.kind = static_cast<wire::FileEdit::Kind>(rng.next_below(5));
      edit.offset = static_cast<std::uint32_t>(rng.next());
      edit.length = static_cast<std::uint32_t>(rng.next_below(2000));
      edit.data.resize(rng.next_below(100));
      rng.fill(edit.data);
      edits.push_back(std::move(edit));
    }
    (void)wire::apply_edits(base, edits);  // error or success, never crash
  }
}

}  // namespace
}  // namespace bullet
