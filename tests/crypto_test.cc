// Tests for the Speck64/128 cipher and capability sealing.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "crypto/oneway.h"
#include "crypto/speck.h"
#include "tests/test_util.h"

namespace bullet {
namespace {

Speck64::Key test_key() {
  // Key words k=0x03020100 l0=0x0b0a0908 l1=0x13121110 l2=0x1b1a1918, laid
  // out little-endian per 32-bit word.
  return Speck64::Key{0x00, 0x01, 0x02, 0x03, 0x08, 0x09, 0x0a, 0x0b,
                      0x10, 0x11, 0x12, 0x13, 0x18, 0x19, 0x1a, 0x1b};
}

TEST(SpeckTest, OfficialTestVector) {
  // Speck64/128 reference vector: pt = (0x3b726574, 0x7475432d),
  // ct = (0x8c6fa548, 0x454e028b).
  Speck64 cipher(test_key());
  const std::uint64_t plaintext = 0x3b7265747475432dULL;
  EXPECT_EQ(0x8c6fa548454e028bULL, cipher.encrypt(plaintext));
}

TEST(SpeckTest, DecryptInvertsEncrypt) {
  Speck64 cipher(test_key());
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t block = rng.next();
    EXPECT_EQ(block, cipher.decrypt(cipher.encrypt(block)));
  }
}

TEST(SpeckTest, DifferentKeysDifferentCiphertext) {
  Speck64 a(test_key());
  Speck64::Key other = test_key();
  other[0] ^= 0x01;
  Speck64 b(other);
  EXPECT_NE(a.encrypt(0), b.encrypt(0));
}

TEST(SpeckTest, AvalancheOnPlaintext) {
  Speck64 cipher(test_key());
  const std::uint64_t base = cipher.encrypt(0x1234567890ABCDEFULL);
  const std::uint64_t flipped = cipher.encrypt(0x1234567890ABCDEEULL);
  // Roughly half the bits should differ.
  const int bits = __builtin_popcountll(base ^ flipped);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(SpeckTest, PermutationNoFixedCollisions) {
  Speck64 cipher(test_key());
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(cipher.encrypt(i));
  }
  EXPECT_EQ(1000u, outputs.size());
}

// --- CheckSealer ----------------------------------------------------------

TEST(CheckSealerTest, VerifyAcceptsSealed) {
  CheckSealer sealer(test_key());
  const std::uint64_t random = 0x123456789ABCULL;
  const std::uint64_t check = sealer.seal(rights::kAll, random);
  EXPECT_TRUE(sealer.verify(rights::kAll, random, check));
}

TEST(CheckSealerTest, CheckIs48Bits) {
  CheckSealer sealer(test_key());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(0u, sealer.seal(static_cast<std::uint8_t>(i), rng.next()) &
                      ~kMask48);
  }
}

TEST(CheckSealerTest, RejectsWrongRights) {
  CheckSealer sealer(test_key());
  const std::uint64_t random = 0xABCDEF;
  const std::uint64_t check = sealer.seal(rights::kRead, random);
  // Escalating rights without resealing must fail.
  EXPECT_FALSE(sealer.verify(rights::kAll, random, check));
  EXPECT_FALSE(sealer.verify(rights::kRead | rights::kDelete, random, check));
}

TEST(CheckSealerTest, RejectsWrongRandom) {
  CheckSealer sealer(test_key());
  const std::uint64_t check = sealer.seal(rights::kAll, 0x111111);
  EXPECT_FALSE(sealer.verify(rights::kAll, 0x222222, check));
}

TEST(CheckSealerTest, RejectsBitFlippedCheck) {
  CheckSealer sealer(test_key());
  const std::uint64_t random = 0x424242;
  const std::uint64_t check = sealer.seal(rights::kAll, random);
  for (int bit = 0; bit < 48; ++bit) {
    EXPECT_FALSE(sealer.verify(rights::kAll, random, check ^ (1ULL << bit)));
  }
}

TEST(CheckSealerTest, DifferentServersDifferentSeals) {
  CheckSealer a(test_key());
  Speck64::Key other = test_key();
  other[15] ^= 0x80;
  CheckSealer b(other);
  EXPECT_NE(a.seal(rights::kAll, 0x777), b.seal(rights::kAll, 0x777));
}

TEST(CheckSealerTest, ForgeryByGuessingIsImplausible) {
  // A brute forger without the key should essentially never hit a valid
  // check among a batch of random guesses (48-bit space).
  CheckSealer sealer(test_key());
  Rng rng(99);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (sealer.verify(rights::kAll, 0x5555, rng.next() & kMask48)) ++hits;
  }
  EXPECT_EQ(0, hits);
}

// --- port derivation --------------------------------------------------------

TEST(PortDerivationTest, DeterministicAnd48Bit) {
  const std::uint64_t pub = derive_public_port(0x1234);
  EXPECT_EQ(pub, derive_public_port(0x1234));
  EXPECT_EQ(0u, pub & ~kMask48);
}

TEST(PortDerivationTest, DistinctPrivatePortsDistinctPublic) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t p = 1; p <= 1000; ++p) {
    seen.insert(derive_public_port(p));
  }
  EXPECT_EQ(1000u, seen.size());
}

TEST(PortDerivationTest, PublicDoesNotEqualPrivate) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t priv = rng.next() & kMask48;
    EXPECT_NE(priv, derive_public_port(priv));
  }
}

}  // namespace
}  // namespace bullet
