// bullet_tool — administration of Bullet servers and disk images.
//
// Offline commands operate on one file-backed replica image
// (dumpe2fs/debugfs style):
//
//   bullet_tool format <image> <size-mb> [inode-slots]
//   bullet_tool fsck   <image>
//   bullet_tool ls     <image>
//   bullet_tool stat   <image>
//   bullet_tool put    <image> <local-file> [pfactor]   -> prints capability
//   bullet_tool get    <image> <capability> [out-file]
//   bullet_tool rm     <image> <capability>
//   bullet_tool compact <image>
//
// Live commands talk to a running bullet_server over UDP (the port and
// admin capability are what the daemon prints at startup):
//
//   bullet_tool stats <port> <cap>                     metrics exposition
//   bullet_tool top   <port> <cap> [seconds]           rates over an interval
//   bullet_tool trace <port> <cap> [--slow DUR] [--max N]  span chains
//
// Capabilities are printed and accepted in the textual form
// "port:object:rights:check" (hex). The tool uses the library's default
// server secret, so capabilities minted by `put` keep working across
// invocations; production deployments configure their own secret.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "cluster/rebalance.h"
#include "cluster/ring.h"
#include "common/crc.h"
#include "dir/client.h"
#include "disk/file_disk.h"
#include "disk/mirrored_disk.h"
#include "obs/trace.h"
#include "rpc/failover_transport.h"
#include "rpc/udp_transport.h"

using namespace bullet;

namespace {

constexpr std::uint64_t kBlockSize = 512;

int usage() {
  std::fprintf(
      stderr,
      "usage: bullet_tool <command> <image> [args]\n"
      "  format <image> <size-mb> [inode-slots=4096]  create a new disk image\n"
      "  fsck   <image>                               consistency check\n"
      "  ls     <image>                               list live objects\n"
      "  stat   <image>                               server statistics\n"
      "  put    <image> <file> [pfactor=1]            store a file, print cap\n"
      "  get    <image> <capability> [out]            fetch a file\n"
      "  rm     <image> <capability>                  delete a file\n"
      "  compact <image>                              squeeze out the holes\n"
      "  scrub  <image> <mirror-image> [repair]       compare replicas\n"
      "  resilver <image> <mirror-image>              rebuild a replica copy\n"
      "  stats  <port> <cap>                          live metrics exposition\n"
      "  status <port> <cap>                          replication role + health\n"
      "  resync <port> <cap>                          reconcile with the peer\n"
      "  top    <port> <cap> [seconds=1]              live rates over interval\n"
      "  trace  <port> <cap> [--slow DUR] [--max N]   live span chains\n"
      "         (DUR accepts ns/us/ms/s suffixes, default 0 = everything)\n"
      "  ring   --shards N [--vnodes V] [--sample K | --object O]\n"
      "         print consistent-hash owners (offline, deterministic)\n"
      "  rebalance <dir-port> <dir-cap> <cluster-cap> <id:udpport[,udpport]>...\n"
      "         move the cluster to exactly this shard set (live)\n"
      "  addshard  <dir-port> <dir-cap> <cluster-cap> <id:udpport[,udpport]>...\n"
      "         grow the cluster by these shards (live)\n");
  return 2;
}

// Read the geometry a formatted image records in its descriptor block.
struct Geometry {
  std::uint64_t block_size = 0;
  std::uint64_t blocks = 0;
};

Result<Geometry> probe_geometry(const std::string& path) {
  BULLET_ASSIGN_OR_RETURN(FileDisk probe, FileDisk::open(path, kBlockSize, 1));
  Bytes block0(kBlockSize);
  BULLET_RETURN_IF_ERROR(probe.read(0, block0));
  BULLET_ASSIGN_OR_RETURN(
      const DiskDescriptor desc,
      DiskDescriptor::decode(ByteSpan(block0.data(), DiskDescriptor::kDiskSize)));
  Geometry g;
  g.block_size = desc.block_size;
  g.blocks = static_cast<std::uint64_t>(desc.control_blocks) + desc.data_blocks;
  return g;
}

struct OpenImage {
  // Heap-allocated so the addresses the mirror and server hold stay valid
  // when the OpenImage itself moves.
  std::unique_ptr<FileDisk> disk;
  std::unique_ptr<MirroredDisk> mirror;
  std::unique_ptr<BulletServer> server;
};

// Probe the image size from the descriptor, then boot a server on it.
Result<OpenImage> open_image(const std::string& path) {
  BULLET_ASSIGN_OR_RETURN(const Geometry geometry, probe_geometry(path));
  BULLET_ASSIGN_OR_RETURN(
      FileDisk disk,
      FileDisk::open(path, geometry.block_size, geometry.blocks));
  OpenImage image;
  image.disk = std::make_unique<FileDisk>(std::move(disk));
  auto mirror = MirroredDisk::create({image.disk.get()});
  if (!mirror.ok()) return mirror.error();
  image.mirror = std::make_unique<MirroredDisk>(std::move(mirror).value());
  BULLET_ASSIGN_OR_RETURN(image.server,
                          BulletServer::start(image.mirror.get(),
                                              BulletConfig()));
  return image;
}

Result<Bytes> read_local_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorCode::not_found, "cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

Status write_local_file(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error(ErrorCode::io_error, "cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return Error(ErrorCode::io_error, "short write to " + path);
  return Status::success();
}

int fail(const Error& error) {
  std::fprintf(stderr, "error: %s\n", error.to_string().c_str());
  return 1;
}

int cmd_format(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  const long size_mb = std::strtol(argv[0], nullptr, 10);
  if (size_mb <= 0 || size_mb > 4096) {
    std::fprintf(stderr, "error: size-mb must be in (0, 4096]\n");
    return 1;
  }
  const std::uint32_t inode_slots =
      argc >= 2 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
                : 4096;
  const std::uint64_t blocks =
      static_cast<std::uint64_t>(size_mb) * (1 << 20) / kBlockSize;
  auto disk = FileDisk::open(image, kBlockSize, blocks);
  if (!disk.ok()) return fail(disk.error());
  const Status st = BulletServer::format(disk.value(), inode_slots);
  if (!st.ok()) return fail(st.error());
  std::printf("formatted %s: %ld MB, %" PRIu64 " blocks of %" PRIu64
              ", %u inode slots\n",
              image.c_str(), size_mb, blocks, kBlockSize, inode_slots);
  return 0;
}

int cmd_fsck(const std::string& image) {
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  const auto& report = opened.value().server->boot_report();
  std::printf("scanned %" PRIu64 " inodes: %" PRIu64 " files, %" PRIu64
              " out-of-bounds cleared, %" PRIu64 " overlaps cleared, %" PRIu64
              " stale cache fields\n",
              report.inodes_scanned, report.files, report.cleared_bad_bounds,
              report.cleared_overlaps, report.cleared_cache_fields);
  return report.repairs() == 0 ? 0 : 1;
}

int cmd_ls(const std::string& image) {
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  const auto objects = opened.value().server->list_objects();
  std::printf("%8s %12s %12s\n", "object", "bytes", "first-block");
  for (const auto& object : objects) {
    std::printf("%8u %12u %12u\n", object.object, object.size_bytes,
                object.first_block);
  }
  std::printf("%zu file(s)\n", objects.size());
  return 0;
}

int cmd_stat(const std::string& image) {
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  const auto stats = opened.value().server->stats();
  const auto& layout = opened.value().server->layout();
  std::printf("block size:        %u\n", layout.block_size());
  std::printf("inode slots:       %u\n", layout.inode_slots());
  std::printf("data region:       %" PRIu64 " blocks\n", layout.data_blocks());
  std::printf("live files:        %" PRIu64 "\n", stats.files_live);
  std::printf("free bytes:        %" PRIu64 "\n", stats.disk_free_bytes);
  std::printf("largest hole:      %" PRIu64 " bytes\n",
              stats.disk_largest_hole_bytes);
  std::printf("holes:             %" PRIu64 "\n", stats.disk_holes);
  return 0;
}

int cmd_put(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  auto data = read_local_file(argv[0]);
  if (!data.ok()) return fail(data.error());
  const int pfactor =
      argc >= 2 ? static_cast<int>(std::strtol(argv[1], nullptr, 10)) : 1;
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  auto cap = opened.value().server->create(data.value(), pfactor);
  if (!cap.ok()) return fail(cap.error());
  const Status st = opened.value().server->sync();
  if (!st.ok()) return fail(st.error());
  std::printf("%s\n", cap.value().to_string().c_str());
  std::fprintf(stderr, "stored %zu bytes (crc32c %08x)\n",
               data.value().size(), crc32c(data.value()));
  return 0;
}

int cmd_get(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  const auto cap = Capability::from_string(argv[0]);
  if (!cap.has_value()) {
    std::fprintf(stderr, "error: malformed capability\n");
    return 1;
  }
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  auto data = opened.value().server->read(*cap);
  if (!data.ok()) return fail(data.error());
  if (argc >= 2) {
    const Status st = write_local_file(argv[1], data.value());
    if (!st.ok()) return fail(st.error());
    std::fprintf(stderr, "wrote %zu bytes to %s\n", data.value().size(),
                 argv[1]);
  } else {
    std::fwrite(data.value().data(), 1, data.value().size(), stdout);
  }
  return 0;
}

int cmd_rm(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  const auto cap = Capability::from_string(argv[0]);
  if (!cap.has_value()) {
    std::fprintf(stderr, "error: malformed capability\n");
    return 1;
  }
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  const Status st = opened.value().server->erase(*cap);
  if (!st.ok()) return fail(st.error());
  const Status synced = opened.value().server->sync();
  if (!synced.ok()) return fail(synced.error());
  std::fprintf(stderr, "deleted\n");
  return 0;
}

int cmd_compact(const std::string& image) {
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  auto moved = opened.value().server->compact_disk();
  if (!moved.ok()) return fail(moved.error());
  const Status st = opened.value().server->sync();
  if (!st.ok()) return fail(st.error());
  std::printf("moved %" PRIu64 " blocks; %" PRIu64 " hole(s) remain\n",
              moved.value(),
              static_cast<std::uint64_t>(
                  opened.value().server->disk_free().hole_count()));
  return 0;
}

// Open `path` and `mirror_path` as a two-replica mirror sharing the
// geometry recorded in `path`'s descriptor (FileDisk::open creates or
// extends `mirror_path` as needed).
struct OpenPair {
  std::unique_ptr<FileDisk> main_disk;
  std::unique_ptr<FileDisk> copy_disk;
  std::unique_ptr<MirroredDisk> mirror;
};

Result<OpenPair> open_pair(const std::string& path,
                           const std::string& mirror_path) {
  BULLET_ASSIGN_OR_RETURN(const Geometry geometry, probe_geometry(path));
  BULLET_ASSIGN_OR_RETURN(
      FileDisk main_disk,
      FileDisk::open(path, geometry.block_size, geometry.blocks));
  BULLET_ASSIGN_OR_RETURN(
      FileDisk copy_disk,
      FileDisk::open(mirror_path, geometry.block_size, geometry.blocks));
  OpenPair pair;
  pair.main_disk = std::make_unique<FileDisk>(std::move(main_disk));
  pair.copy_disk = std::make_unique<FileDisk>(std::move(copy_disk));
  auto mirror =
      MirroredDisk::create({pair.main_disk.get(), pair.copy_disk.get()});
  if (!mirror.ok()) return mirror.error();
  pair.mirror = std::make_unique<MirroredDisk>(std::move(mirror).value());
  return pair;
}

int cmd_scrub(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  const bool repair = argc >= 2 && std::strcmp(argv[1], "repair") == 0;
  auto pair = open_pair(image, argv[0]);
  if (!pair.ok()) return fail(pair.error());
  auto report = pair.value().mirror->scrub(repair);
  if (!report.ok()) return fail(report.error());
  if (repair) {
    const Status st = pair.value().mirror->flush();
    if (!st.ok()) return fail(st.error());
  }
  std::printf("checked %" PRIu64 " blocks: %" PRIu64 " mismatched, %" PRIu64
              " repaired\n",
              report.value().blocks_checked, report.value().mismatched_blocks,
              report.value().repaired_blocks);
  // Unrepaired divergence is a finding, like fsck's non-zero repair count.
  return report.value().mismatched_blocks == report.value().repaired_blocks
             ? 0
             : 1;
}

int cmd_resilver(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  auto pair = open_pair(image, argv[0]);
  if (!pair.ok()) return fail(pair.error());
  MirroredDisk& mirror = *pair.value().mirror;
  mirror.mark_failed(1);  // the copy is presumed stale; rebuild it fully
  const Status st = mirror.resilver(1);
  if (!st.ok()) return fail(st.error());
  const Status flushed = mirror.flush();
  if (!flushed.ok()) return fail(flushed.error());
  std::printf("resilvered %s from %s (%" PRIu64 " blocks)\n", argv[0],
              image.c_str(), mirror.num_blocks());
  return 0;
}

// --- live-server commands (UDP) ---------------------------------------------

struct LiveConnection {
  std::unique_ptr<rpc::UdpTransport> transport;
  std::unique_ptr<BulletClient> client;
};

Result<LiveConnection> connect_live(const std::string& port_text,
                                    const std::string& cap_text) {
  const unsigned long port = std::strtoul(port_text.c_str(), nullptr, 10);
  if (port == 0 || port > 0xFFFF) {
    return Error(ErrorCode::bad_argument, "bad port: " + port_text);
  }
  const auto cap = Capability::from_string(cap_text);
  if (!cap) return Error(ErrorCode::bad_argument, "bad capability");
  rpc::UdpClientOptions options;
  options.server_udp_port = static_cast<std::uint16_t>(port);
  BULLET_ASSIGN_OR_RETURN(auto transport, rpc::UdpTransport::connect(options));
  LiveConnection conn;
  conn.client = std::make_unique<BulletClient>(transport.get(), *cap);
  conn.transport = std::move(transport);
  return conn;
}

// "5ms" / "250us" / "1s" / "12345" (plain = ns) -> nanoseconds.
Result<std::uint64_t> parse_duration_ns(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) {
    return Error(ErrorCode::bad_argument, "bad duration: " + text);
  }
  const std::string unit(end);
  double scale = 1.0;
  if (unit == "ns" || unit.empty()) scale = 1.0;
  else if (unit == "us") scale = 1e3;
  else if (unit == "ms") scale = 1e6;
  else if (unit == "s") scale = 1e9;
  else return Error(ErrorCode::bad_argument, "bad duration unit: " + unit);
  return static_cast<std::uint64_t>(value * scale);
}

std::string format_ns(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else if (ns >= 1000ull) {
    std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRIu64 "ns", ns);
  }
  return buf;
}

const char* opcode_name(std::uint16_t opcode) {
  switch (opcode) {
    case wire::kCreate: return "CREATE";
    case wire::kRead: return "READ";
    case wire::kSize: return "SIZE";
    case wire::kDelete: return "DELETE";
    case wire::kCreateFrom: return "CREATE-FROM";
    case wire::kReadRange: return "READ-RANGE";
    case wire::kStats: return "STATS";
    case wire::kSync: return "SYNC";
    case wire::kCompactDisk: return "COMPACT";
    case wire::kFsck: return "FSCK";
    case wire::kRestrict: return "RESTRICT";
    case wire::kStats2: return "STATS2";
    case wire::kTraceDump: return "TRACE-DUMP";
    case wire::kReplicate: return "REPLICATE";
    case wire::kReplResync: return "REPL-RESYNC";
    case wire::kShardMap: return "SHARD-MAP";
  }
  return "?";
}

int cmd_live_stats(int argc, char** argv) {
  if (argc < 2) return usage();
  auto conn = connect_live(argv[0], argv[1]);
  if (!conn.ok()) return fail(conn.error());
  auto text = conn.value().client->stats_text();
  if (!text.ok()) return fail(text.error());
  std::fputs(text.value().c_str(), stdout);
  return 0;
}

// Find `name` in an exposition text; -1 when absent.
long long metric_value(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  const std::string needle = name + " ";
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? eol : eol - pos);
    if (line.rfind(needle, 0) == 0) {
      return std::strtoll(line.c_str() + needle.size(), nullptr, 10);
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return -1;
}

int cmd_status(int argc, char** argv) {
  if (argc < 2) return usage();
  auto conn = connect_live(argv[0], argv[1]);
  if (!conn.ok()) return fail(conn.error());
  auto stats = conn.value().client->stats();
  if (!stats.ok()) return fail(stats.error());
  const auto& s = stats.value();
  const char* role = s.repl_role == 1   ? "primary"
                     : s.repl_role == 2 ? "backup"
                                        : "solo";
  std::printf("role:              %s\n", role);
  if (s.repl_role != 0) {
    std::printf("peer:              %s\n",
                s.repl_peer_healthy != 0 ? "healthy" : "down (degraded)");
  }
  std::printf("files live:        %" PRIu64 "\n", s.files_live);
  std::printf("pushes:            %" PRIu64 " ok, %" PRIu64 " failed\n",
              s.repl_pushes, s.repl_push_failures);
  std::printf("peer ops applied:  %" PRIu64 "\n", s.repl_installs);
  std::printf("resyncs:           %" PRIu64 " (%" PRIu64 " files copied)\n",
              s.repl_resyncs, s.repl_resync_files);
  std::printf("dedup hits:        %" PRIu64 "\n", s.repl_dedup_hits);
  // A degraded pair is a finding, like fsck's non-zero repair count.
  return s.repl_role != 0 && s.repl_peer_healthy == 0 ? 1 : 0;
}

int cmd_resync(int argc, char** argv) {
  if (argc < 2) return usage();
  auto conn = connect_live(argv[0], argv[1]);
  if (!conn.ok()) return fail(conn.error());
  auto report = conn.value().client->repl_resync();
  if (!report.ok()) return fail(report.error());
  const auto& r = report.value();
  std::printf("pulled %" PRIu64 ", pushed %" PRIu64 ", erases %" PRIu64
              ", duplicates %" PRIu64 ", conflicts %" PRIu64 "\n",
              r.files_pulled, r.files_pushed, r.erases_applied,
              r.duplicates_reconciled, r.conflicts);
  return r.conflicts == 0 ? 0 : 1;
}

int cmd_top(int argc, char** argv) {
  if (argc < 2) return usage();
  auto conn = connect_live(argv[0], argv[1]);
  if (!conn.ok()) return fail(conn.error());
  const double seconds = argc >= 3 ? std::strtod(argv[2], nullptr) : 1.0;
  if (seconds <= 0) return usage();
  auto before = conn.value().client->stats_text();
  if (!before.ok()) return fail(before.error());
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));
  auto after = conn.value().client->stats_text();
  if (!after.ok()) return fail(after.error());

  auto rate = [&](const char* name) {
    const long long a = metric_value(before.value(), name);
    const long long b = metric_value(after.value(), name);
    return a < 0 || b < 0 ? 0.0 : (b - a) / seconds;
  };
  std::printf("interval: %.1fs\n", seconds);
  std::printf("reads/s:        %10.1f\n", rate("bullet_reads_total"));
  std::printf("creates/s:      %10.1f\n", rate("bullet_creates_total"));
  std::printf("deletes/s:      %10.1f\n", rate("bullet_deletes_total"));
  std::printf("served MB/s:    %10.2f\n",
              rate("bullet_bytes_served_total") / 1e6);
  std::printf("stored MB/s:    %10.2f\n",
              rate("bullet_bytes_stored_total") / 1e6);
  std::printf("cache hits/s:   %10.1f\n", rate("bullet_cache_hits_total"));
  std::printf("cache misses/s: %10.1f\n", rate("bullet_cache_misses_total"));
  std::printf("lock wait/s:    %10s\n",
              format_ns(static_cast<std::uint64_t>(
                            rate("bullet_lock_wait_ns_total")))
                  .c_str());
  std::printf("files live:     %10lld\n",
              metric_value(after.value(), "bullet_files_live"));
  std::printf("cache free:     %10lld\n",
              metric_value(after.value(), "bullet_cache_free_bytes"));
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 2) return usage();
  std::uint64_t threshold_ns = 0;
  std::uint32_t max_spans = 1024;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--slow" && i + 1 < argc) {
      auto parsed = parse_duration_ns(argv[++i]);
      if (!parsed.ok()) return fail(parsed.error());
      threshold_ns = parsed.value();
    } else if (arg == "--max" && i + 1 < argc) {
      max_spans = static_cast<std::uint32_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else {
      return usage();
    }
  }
  auto conn = connect_live(argv[0], argv[1]);
  if (!conn.ok()) return fail(conn.error());
  auto spans = conn.value().client->trace_dump(threshold_ns, max_spans);
  if (!spans.ok()) return fail(spans.error());

  // Group into chains by seq (the dump keeps chains contiguous).
  std::size_t begin = 0;
  std::size_t chains = 0;
  const auto& all = spans.value();
  while (begin < all.size()) {
    std::size_t end = begin + 1;
    while (end < all.size() && all[end].seq == all[begin].seq) ++end;
    std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
    for (std::size_t i = begin; i < end; ++i) {
      lo = std::min(lo, all[i].start_ns);
      hi = std::max(hi, all[i].start_ns + all[i].dur_ns);
    }
    std::printf("seq=%" PRIu64 " op=%s id=%" PRIx64 " total=%s\n",
                all[begin].seq, opcode_name(all[begin].opcode),
                all[begin].trace_id, format_ns(hi - lo).c_str());
    for (std::size_t i = begin; i < end; ++i) {
      std::printf("  %-11s +%-10s %s\n",
                  obs::stage_name(static_cast<obs::Stage>(all[i].stage)),
                  format_ns(all[i].start_ns - lo).c_str(),
                  format_ns(all[i].dur_ns).c_str());
    }
    ++chains;
    begin = end;
  }
  std::printf("%zu chain(s), %zu span(s)\n", chains, all.size());
  return 0;
}

// --- cluster ------------------------------------------------------------

// Print ring owners for shard ids 1..N. Placement is a pure function of
// (ids, vnodes, object), so this output is identical on every machine —
// tests diff it against the in-process ring to prove cross-process
// determinism, and operators use it to predict where an object lands.
int cmd_ring(int argc, char** argv) {
  std::uint32_t shards = 0;
  std::uint32_t vnodes = cluster::kDefaultVnodes;
  std::uint64_t sample = 8;
  bool have_object = false;
  std::uint32_t object = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) return usage();
    const std::uint64_t value = std::strtoull(argv[++i], nullptr, 10);
    if (arg == "--shards") shards = static_cast<std::uint32_t>(value);
    else if (arg == "--vnodes") vnodes = static_cast<std::uint32_t>(value);
    else if (arg == "--sample") sample = value;
    else if (arg == "--object") {
      have_object = true;
      object = static_cast<std::uint32_t>(value);
    } else {
      return usage();
    }
  }
  if (shards == 0 || shards > 4096 || vnodes == 0 || vnodes > 4096) {
    return usage();
  }
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 1; i <= shards; ++i) ids.push_back(i);
  const cluster::Ring ring(ids, vnodes);
  if (have_object) {
    std::printf("%u %u\n", object, ring.owner_of(object));
    return 0;
  }
  for (std::uint64_t o = 1; o <= sample; ++o) {
    std::printf("%" PRIu64 " %u\n", o,
                ring.owner_of(static_cast<std::uint32_t>(o)));
  }
  return 0;
}

// Shard spec "id:udpport[,udpport...]" -> ShardInfo. In the UDP deployment
// the map's opaque endpoint tokens are the shards' UDP ports.
Result<cluster::ShardInfo> parse_shard_spec(const std::string& text) {
  cluster::ShardInfo info;
  char* end = nullptr;
  const unsigned long id = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != ':' || id == 0) {
    return Error(ErrorCode::bad_argument, "bad shard spec: " + text);
  }
  info.id = static_cast<std::uint32_t>(id);
  const char* p = end + 1;
  while (*p != '\0') {
    char* stop = nullptr;
    const unsigned long port = std::strtoul(p, &stop, 10);
    if (stop == p || port == 0 || port > 0xFFFF) {
      return Error(ErrorCode::bad_argument, "bad shard spec: " + text);
    }
    info.endpoints.push_back(port);
    p = stop;
    if (*p == ',') ++p;
    else if (*p != '\0') {
      return Error(ErrorCode::bad_argument, "bad shard spec: " + text);
    }
  }
  if (info.endpoints.empty()) {
    return Error(ErrorCode::bad_argument, "shard spec has no ports: " + text);
  }
  return info;
}

// Transports for live cluster commands: one UdpTransport per endpoint
// token, one FailoverTransport per shard (over its replica endpoints).
struct ClusterNet {
  std::map<std::uint64_t, std::unique_ptr<rpc::UdpTransport>> endpoints;
  std::map<std::uint32_t, std::unique_ptr<rpc::FailoverTransport>> shards;

  rpc::Transport* endpoint(std::uint64_t token) {
    const auto it = endpoints.find(token);
    if (it != endpoints.end()) return it->second.get();
    if (token == 0 || token > 0xFFFF) return nullptr;
    rpc::UdpClientOptions options;
    options.server_udp_port = static_cast<std::uint16_t>(token);
    auto transport = rpc::UdpTransport::connect(options);
    if (!transport.ok()) return nullptr;
    return endpoints.emplace(token, std::move(transport).value())
        .first->second.get();
  }

  cluster::RoutingClient::Resolver resolver() {
    return [this](const cluster::ShardInfo& info) -> rpc::Transport* {
      const auto it = shards.find(info.id);
      if (it != shards.end()) return it->second.get();
      std::vector<rpc::Transport*> replicas;
      for (const std::uint64_t token : info.endpoints) {
        rpc::Transport* t = endpoint(token);
        if (t != nullptr) replicas.push_back(t);
      }
      if (replicas.empty()) return nullptr;
      auto failover =
          std::make_unique<rpc::FailoverTransport>(std::move(replicas));
      return shards.emplace(info.id, std::move(failover)).first->second.get();
    };
  }
};

// rebalance: move the cluster to exactly the given shard set; addshard:
// grow the current set by the given shards. With no map installed yet,
// either form bootstraps the target as epoch 1.
int cmd_rebalance(int argc, char** argv, bool add_to_current) {
  if (argc < 4) return usage();
  const unsigned long dir_port = std::strtoul(argv[0], nullptr, 10);
  if (dir_port == 0 || dir_port > 0xFFFF) return usage();
  const auto dir_cap = Capability::from_string(argv[1]);
  const auto cluster_cap = Capability::from_string(argv[2]);
  if (!dir_cap || !cluster_cap) {
    std::fprintf(stderr, "error: bad capability\n");
    return 2;
  }
  std::vector<cluster::ShardInfo> target;
  for (int i = 3; i < argc; ++i) {
    auto info = parse_shard_spec(argv[i]);
    if (!info.ok()) return fail(info.error());
    target.push_back(std::move(info).value());
  }

  rpc::UdpClientOptions options;
  options.server_udp_port = static_cast<std::uint16_t>(dir_port);
  auto dir_transport = rpc::UdpTransport::connect(options);
  if (!dir_transport.ok()) return fail(dir_transport.error());
  dir::DirClient dir(dir_transport.value().get(), *dir_cap);

  ClusterNet net;
  cluster::Rebalancer rebalancer(&dir, *cluster_cap, net.resolver());

  const auto epoch = dir.map_epoch();
  if (!epoch.ok()) return fail(epoch.error());
  if (epoch.value() == 0) {
    cluster::PlacementMap initial;
    initial.epoch = 1;
    initial.shards = target;
    const Status st = rebalancer.bootstrap(std::move(initial));
    if (!st.ok()) return fail(st.error());
    std::printf("bootstrapped epoch 1 with %zu shard(s)\n", target.size());
    return 0;
  }
  if (add_to_current) {
    auto fetched = dir.fetch_map();
    if (!fetched.ok()) return fail(fetched.error());
    auto current =
        cluster::PlacementMap::decode_bytes(ByteSpan(fetched.value().map));
    if (!current.ok()) return fail(current.error());
    std::vector<cluster::ShardInfo> merged = current.value().shards;
    for (cluster::ShardInfo& s : target) merged.push_back(std::move(s));
    target = std::move(merged);
  }
  auto report = rebalancer.run(std::move(target));
  if (!report.ok()) return fail(report.error());
  const cluster::Rebalancer::Report& r = report.value();
  std::printf(
      "planned %zu move(s), copied %zu, reconciled %zu, drained %zu, "
      "conflicts %zu\n",
      r.planned, r.copied, r.reconciled, r.drained, r.conflicts);
  const auto new_epoch = dir.map_epoch();
  if (new_epoch.ok()) {
    std::printf("epoch %" PRIu64 "\n", new_epoch.value());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string image = argv[2];
  const int rest_argc = argc - 3;
  char** rest_argv = argv + 3;

  if (command == "format") return cmd_format(image, rest_argc, rest_argv);
  if (command == "fsck") return cmd_fsck(image);
  if (command == "ls") return cmd_ls(image);
  if (command == "stat") return cmd_stat(image);
  if (command == "put") return cmd_put(image, rest_argc, rest_argv);
  if (command == "get") return cmd_get(image, rest_argc, rest_argv);
  if (command == "rm") return cmd_rm(image, rest_argc, rest_argv);
  if (command == "compact") return cmd_compact(image);
  if (command == "scrub") return cmd_scrub(image, rest_argc, rest_argv);
  if (command == "resilver") return cmd_resilver(image, rest_argc, rest_argv);
  // Live commands: argv[2] is a UDP port, argv[3] an admin capability.
  if (command == "stats") return cmd_live_stats(argc - 2, argv + 2);
  if (command == "status") return cmd_status(argc - 2, argv + 2);
  if (command == "resync") return cmd_resync(argc - 2, argv + 2);
  if (command == "top") return cmd_top(argc - 2, argv + 2);
  if (command == "trace") return cmd_trace(argc - 2, argv + 2);
  // Cluster commands: `ring` is offline; the rebalance pair talks to the
  // directory server and every shard over UDP.
  if (command == "ring") return cmd_ring(argc - 2, argv + 2);
  if (command == "rebalance") return cmd_rebalance(argc - 2, argv + 2, false);
  if (command == "addshard") return cmd_rebalance(argc - 2, argv + 2, true);
  return usage();
}
