// bullet_tool — offline administration of Bullet disk images.
//
// Operates on one file-backed replica image (dumpe2fs/debugfs style):
//
//   bullet_tool format <image> <size-mb> [inode-slots]
//   bullet_tool fsck   <image>
//   bullet_tool ls     <image>
//   bullet_tool stat   <image>
//   bullet_tool put    <image> <local-file> [pfactor]   -> prints capability
//   bullet_tool get    <image> <capability> [out-file]
//   bullet_tool rm     <image> <capability>
//   bullet_tool compact <image>
//
// Capabilities are printed and accepted in the textual form
// "port:object:rights:check" (hex). The tool uses the library's default
// server secret, so capabilities minted by `put` keep working across
// invocations; production deployments configure their own secret.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bullet/server.h"
#include "common/crc.h"
#include "disk/file_disk.h"
#include "disk/mirrored_disk.h"

using namespace bullet;

namespace {

constexpr std::uint64_t kBlockSize = 512;

int usage() {
  std::fprintf(
      stderr,
      "usage: bullet_tool <command> <image> [args]\n"
      "  format <image> <size-mb> [inode-slots=4096]  create a new disk image\n"
      "  fsck   <image>                               consistency check\n"
      "  ls     <image>                               list live objects\n"
      "  stat   <image>                               server statistics\n"
      "  put    <image> <file> [pfactor=1]            store a file, print cap\n"
      "  get    <image> <capability> [out]            fetch a file\n"
      "  rm     <image> <capability>                  delete a file\n"
      "  compact <image>                              squeeze out the holes\n"
      "  scrub  <image> <mirror-image> [repair]       compare replicas\n"
      "  resilver <image> <mirror-image>              rebuild a replica copy\n");
  return 2;
}

// Read the geometry a formatted image records in its descriptor block.
struct Geometry {
  std::uint64_t block_size = 0;
  std::uint64_t blocks = 0;
};

Result<Geometry> probe_geometry(const std::string& path) {
  BULLET_ASSIGN_OR_RETURN(FileDisk probe, FileDisk::open(path, kBlockSize, 1));
  Bytes block0(kBlockSize);
  BULLET_RETURN_IF_ERROR(probe.read(0, block0));
  BULLET_ASSIGN_OR_RETURN(
      const DiskDescriptor desc,
      DiskDescriptor::decode(ByteSpan(block0.data(), DiskDescriptor::kDiskSize)));
  Geometry g;
  g.block_size = desc.block_size;
  g.blocks = static_cast<std::uint64_t>(desc.control_blocks) + desc.data_blocks;
  return g;
}

struct OpenImage {
  // Heap-allocated so the addresses the mirror and server hold stay valid
  // when the OpenImage itself moves.
  std::unique_ptr<FileDisk> disk;
  std::unique_ptr<MirroredDisk> mirror;
  std::unique_ptr<BulletServer> server;
};

// Probe the image size from the descriptor, then boot a server on it.
Result<OpenImage> open_image(const std::string& path) {
  BULLET_ASSIGN_OR_RETURN(const Geometry geometry, probe_geometry(path));
  BULLET_ASSIGN_OR_RETURN(
      FileDisk disk,
      FileDisk::open(path, geometry.block_size, geometry.blocks));
  OpenImage image;
  image.disk = std::make_unique<FileDisk>(std::move(disk));
  auto mirror = MirroredDisk::create({image.disk.get()});
  if (!mirror.ok()) return mirror.error();
  image.mirror = std::make_unique<MirroredDisk>(std::move(mirror).value());
  BULLET_ASSIGN_OR_RETURN(image.server,
                          BulletServer::start(image.mirror.get(),
                                              BulletConfig()));
  return image;
}

Result<Bytes> read_local_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorCode::not_found, "cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

Status write_local_file(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error(ErrorCode::io_error, "cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return Error(ErrorCode::io_error, "short write to " + path);
  return Status::success();
}

int fail(const Error& error) {
  std::fprintf(stderr, "error: %s\n", error.to_string().c_str());
  return 1;
}

int cmd_format(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  const long size_mb = std::strtol(argv[0], nullptr, 10);
  if (size_mb <= 0 || size_mb > 4096) {
    std::fprintf(stderr, "error: size-mb must be in (0, 4096]\n");
    return 1;
  }
  const std::uint32_t inode_slots =
      argc >= 2 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
                : 4096;
  const std::uint64_t blocks =
      static_cast<std::uint64_t>(size_mb) * (1 << 20) / kBlockSize;
  auto disk = FileDisk::open(image, kBlockSize, blocks);
  if (!disk.ok()) return fail(disk.error());
  const Status st = BulletServer::format(disk.value(), inode_slots);
  if (!st.ok()) return fail(st.error());
  std::printf("formatted %s: %ld MB, %" PRIu64 " blocks of %" PRIu64
              ", %u inode slots\n",
              image.c_str(), size_mb, blocks, kBlockSize, inode_slots);
  return 0;
}

int cmd_fsck(const std::string& image) {
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  const auto& report = opened.value().server->boot_report();
  std::printf("scanned %" PRIu64 " inodes: %" PRIu64 " files, %" PRIu64
              " out-of-bounds cleared, %" PRIu64 " overlaps cleared, %" PRIu64
              " stale cache fields\n",
              report.inodes_scanned, report.files, report.cleared_bad_bounds,
              report.cleared_overlaps, report.cleared_cache_fields);
  return report.repairs() == 0 ? 0 : 1;
}

int cmd_ls(const std::string& image) {
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  const auto objects = opened.value().server->list_objects();
  std::printf("%8s %12s %12s\n", "object", "bytes", "first-block");
  for (const auto& object : objects) {
    std::printf("%8u %12u %12u\n", object.object, object.size_bytes,
                object.first_block);
  }
  std::printf("%zu file(s)\n", objects.size());
  return 0;
}

int cmd_stat(const std::string& image) {
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  const auto stats = opened.value().server->stats();
  const auto& layout = opened.value().server->layout();
  std::printf("block size:        %u\n", layout.block_size());
  std::printf("inode slots:       %u\n", layout.inode_slots());
  std::printf("data region:       %" PRIu64 " blocks\n", layout.data_blocks());
  std::printf("live files:        %" PRIu64 "\n", stats.files_live);
  std::printf("free bytes:        %" PRIu64 "\n", stats.disk_free_bytes);
  std::printf("largest hole:      %" PRIu64 " bytes\n",
              stats.disk_largest_hole_bytes);
  std::printf("holes:             %" PRIu64 "\n", stats.disk_holes);
  return 0;
}

int cmd_put(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  auto data = read_local_file(argv[0]);
  if (!data.ok()) return fail(data.error());
  const int pfactor =
      argc >= 2 ? static_cast<int>(std::strtol(argv[1], nullptr, 10)) : 1;
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  auto cap = opened.value().server->create(data.value(), pfactor);
  if (!cap.ok()) return fail(cap.error());
  const Status st = opened.value().server->sync();
  if (!st.ok()) return fail(st.error());
  std::printf("%s\n", cap.value().to_string().c_str());
  std::fprintf(stderr, "stored %zu bytes (crc32c %08x)\n",
               data.value().size(), crc32c(data.value()));
  return 0;
}

int cmd_get(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  const auto cap = Capability::from_string(argv[0]);
  if (!cap.has_value()) {
    std::fprintf(stderr, "error: malformed capability\n");
    return 1;
  }
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  auto data = opened.value().server->read(*cap);
  if (!data.ok()) return fail(data.error());
  if (argc >= 2) {
    const Status st = write_local_file(argv[1], data.value());
    if (!st.ok()) return fail(st.error());
    std::fprintf(stderr, "wrote %zu bytes to %s\n", data.value().size(),
                 argv[1]);
  } else {
    std::fwrite(data.value().data(), 1, data.value().size(), stdout);
  }
  return 0;
}

int cmd_rm(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  const auto cap = Capability::from_string(argv[0]);
  if (!cap.has_value()) {
    std::fprintf(stderr, "error: malformed capability\n");
    return 1;
  }
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  const Status st = opened.value().server->erase(*cap);
  if (!st.ok()) return fail(st.error());
  const Status synced = opened.value().server->sync();
  if (!synced.ok()) return fail(synced.error());
  std::fprintf(stderr, "deleted\n");
  return 0;
}

int cmd_compact(const std::string& image) {
  auto opened = open_image(image);
  if (!opened.ok()) return fail(opened.error());
  auto moved = opened.value().server->compact_disk();
  if (!moved.ok()) return fail(moved.error());
  const Status st = opened.value().server->sync();
  if (!st.ok()) return fail(st.error());
  std::printf("moved %" PRIu64 " blocks; %" PRIu64 " hole(s) remain\n",
              moved.value(),
              static_cast<std::uint64_t>(
                  opened.value().server->disk_free().hole_count()));
  return 0;
}

// Open `path` and `mirror_path` as a two-replica mirror sharing the
// geometry recorded in `path`'s descriptor (FileDisk::open creates or
// extends `mirror_path` as needed).
struct OpenPair {
  std::unique_ptr<FileDisk> main_disk;
  std::unique_ptr<FileDisk> copy_disk;
  std::unique_ptr<MirroredDisk> mirror;
};

Result<OpenPair> open_pair(const std::string& path,
                           const std::string& mirror_path) {
  BULLET_ASSIGN_OR_RETURN(const Geometry geometry, probe_geometry(path));
  BULLET_ASSIGN_OR_RETURN(
      FileDisk main_disk,
      FileDisk::open(path, geometry.block_size, geometry.blocks));
  BULLET_ASSIGN_OR_RETURN(
      FileDisk copy_disk,
      FileDisk::open(mirror_path, geometry.block_size, geometry.blocks));
  OpenPair pair;
  pair.main_disk = std::make_unique<FileDisk>(std::move(main_disk));
  pair.copy_disk = std::make_unique<FileDisk>(std::move(copy_disk));
  auto mirror =
      MirroredDisk::create({pair.main_disk.get(), pair.copy_disk.get()});
  if (!mirror.ok()) return mirror.error();
  pair.mirror = std::make_unique<MirroredDisk>(std::move(mirror).value());
  return pair;
}

int cmd_scrub(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  const bool repair = argc >= 2 && std::strcmp(argv[1], "repair") == 0;
  auto pair = open_pair(image, argv[0]);
  if (!pair.ok()) return fail(pair.error());
  auto report = pair.value().mirror->scrub(repair);
  if (!report.ok()) return fail(report.error());
  if (repair) {
    const Status st = pair.value().mirror->flush();
    if (!st.ok()) return fail(st.error());
  }
  std::printf("checked %" PRIu64 " blocks: %" PRIu64 " mismatched, %" PRIu64
              " repaired\n",
              report.value().blocks_checked, report.value().mismatched_blocks,
              report.value().repaired_blocks);
  // Unrepaired divergence is a finding, like fsck's non-zero repair count.
  return report.value().mismatched_blocks == report.value().repaired_blocks
             ? 0
             : 1;
}

int cmd_resilver(const std::string& image, int argc, char** argv) {
  if (argc < 1) return usage();
  auto pair = open_pair(image, argv[0]);
  if (!pair.ok()) return fail(pair.error());
  MirroredDisk& mirror = *pair.value().mirror;
  mirror.mark_failed(1);  // the copy is presumed stale; rebuild it fully
  const Status st = mirror.resilver(1);
  if (!st.ok()) return fail(st.error());
  const Status flushed = mirror.flush();
  if (!flushed.ok()) return fail(flushed.error());
  std::printf("resilvered %s from %s (%" PRIu64 " blocks)\n", argv[0],
              image.c_str(), mirror.num_blocks());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string image = argv[2];
  const int rest_argc = argc - 3;
  char** rest_argv = argv + 3;

  if (command == "format") return cmd_format(image, rest_argc, rest_argv);
  if (command == "fsck") return cmd_fsck(image);
  if (command == "ls") return cmd_ls(image);
  if (command == "stat") return cmd_stat(image);
  if (command == "put") return cmd_put(image, rest_argc, rest_argv);
  if (command == "get") return cmd_get(image, rest_argc, rest_argv);
  if (command == "rm") return cmd_rm(image, rest_argc, rest_argv);
  if (command == "compact") return cmd_compact(image);
  if (command == "scrub") return cmd_scrub(image, rest_argc, rest_argv);
  if (command == "resilver") return cmd_resilver(image, rest_argc, rest_argv);
  return usage();
}
