// bullet_server — a deployable Bullet file server daemon.
//
// Serves one or two file-backed disk images (mirrored replicas) over UDP,
// together with a directory server persisted in the Bullet store:
//
//   bullet_server --image a.img [--image b.img] [--port 4132]
//                 [--cache-mb 64] [--dir-bootstrap FILE] [--workers 4]
//                 [--io-threads 2]
//
// On startup it prints the UDP port, the Bullet super capability, the
// directory super capability, and the root directory capability; clients
// (bullet_client, or anything built on BulletClient/DirClient over
// UdpTransport) need exactly those strings. The root/bootstrap capability
// is kept in --dir-bootstrap (default: <first image>.dircap) so directory
// state survives restarts.
//
// Runs until SIGINT/SIGTERM; shuts down cleanly (checkpoint + sync).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "dir/client.h"
#include "dir/server.h"
#include "disk/file_disk.h"
#include "disk/mirrored_disk.h"
#include "obs/trace.h"
#include "rpc/udp_transport.h"

using namespace bullet;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: bullet_server --image FILE [--image FILE] "
               "[--port N] [--cache-mb N] [--dir-bootstrap FILE] "
               "[--workers N] [--io-threads N] [--no-trace] "
               "[--trace-sample N] [--max-queue N] [--max-client-queue N] "
               "[--max-inflight N] [--shed-retry-ms N] "
               "[--peer UDP-PORT --role primary|backup]\n");
  return 2;
}

// The directory server is single-threaded; when the UDP front door runs a
// worker pool, its dispatch is serialized through this adapter (the Bullet
// server itself is thread-safe and registered directly).
class SerializedService final : public rpc::Service {
 public:
  explicit SerializedService(rpc::Service* inner) : inner_(inner) {}
  Port public_port() const noexcept override { return inner_->public_port(); }
  rpc::Reply handle(const rpc::Request& request) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->handle(request);
  }

 private:
  rpc::Service* inner_;
  std::mutex mu_;
};

struct BootstrapFile {
  // The persisted pair: directory-state snapshot + root directory cap.
  Capability snapshot;
  Capability root;
};

bool load_bootstrap(const std::string& path, BootstrapFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string snapshot_text, root_text;
  if (!std::getline(in, snapshot_text) || !std::getline(in, root_text)) {
    return false;
  }
  const auto snapshot = Capability::from_string(snapshot_text);
  const auto root = Capability::from_string(root_text);
  if (!snapshot || !root) return false;
  out->snapshot = *snapshot;
  out->root = *root;
  return true;
}

bool save_bootstrap(const std::string& path, const BootstrapFile& data) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << data.snapshot.to_string() << "\n" << data.root.to_string() << "\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> images;
  std::uint16_t udp_port = 4132;
  std::uint64_t cache_mb = 64;
  std::string bootstrap_path;
  unsigned workers = 4;
  // Disk submissions run on a completion pool so no UDP worker ever blocks
  // inside a device read/write; 0 executes ops inline (pre-pipeline mode).
  unsigned io_threads = 2;
  // Overload control (docs/OPERATIONS.md "Overload and pushback"): bound
  // the dispatch queue and the in-flight disk fills so open-loop overload
  // is shed in O(1) with BS_PUSHBACK instead of collapsing p99. 0 disables
  // a bound.
  std::size_t max_queue = 1024;
  std::size_t max_client_queue = 0;
  std::size_t max_inflight = 256;
  std::uint32_t shed_retry_ms = 50;
  // Replicated pair: the other server's UDP port and this side's role.
  // Both daemons must share the library's default private port and secret
  // (they do unless the build customizes BulletConfig), so capabilities
  // verify at either replica.
  std::uint16_t peer_port = 0;
  BulletServer::ReplRole role = BulletServer::ReplRole::kSolo;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--image") {
      const char* v = next();
      if (v == nullptr) return usage();
      images.push_back(v);
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return usage();
      udp_port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--cache-mb") {
      const char* v = next();
      if (v == nullptr) return usage();
      cache_mb = std::strtoull(v, nullptr, 10);
    } else if (arg == "--dir-bootstrap") {
      const char* v = next();
      if (v == nullptr) return usage();
      bootstrap_path = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return usage();
      workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--io-threads") {
      const char* v = next();
      if (v == nullptr) return usage();
      io_threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--max-queue") {
      const char* v = next();
      if (v == nullptr) return usage();
      max_queue = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-client-queue") {
      const char* v = next();
      if (v == nullptr) return usage();
      max_client_queue =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (v == nullptr) return usage();
      max_inflight = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--shed-retry-ms") {
      const char* v = next();
      if (v == nullptr) return usage();
      shed_retry_ms = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--peer") {
      const char* v = next();
      if (v == nullptr) return usage();
      peer_port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--role") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "primary") == 0) {
        role = BulletServer::ReplRole::kPrimary;
      } else if (std::strcmp(v, "backup") == 0) {
        role = BulletServer::ReplRole::kBackup;
      } else {
        return usage();
      }
    } else if (arg == "--no-trace") {
      // Disables sampling AND client-forced traces (the overhead baseline).
      obs::set_tracing_enabled(false);
    } else if (arg == "--trace-sample") {
      // Trace 1 in N id-less requests (default obs::kDefaultSampleEvery).
      const char* v = next();
      if (v == nullptr) return usage();
      obs::set_sample_every(
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10)));
    } else {
      return usage();
    }
  }
  if (images.empty() || images.size() > 2) return usage();
  if ((peer_port != 0) != (role != BulletServer::ReplRole::kSolo)) {
    std::fprintf(stderr, "--peer and --role go together\n");
    return usage();
  }
  if (bootstrap_path.empty()) bootstrap_path = images.front() + ".dircap";

  // Open the replica images (they must be pre-formatted via bullet_tool).
  std::vector<std::unique_ptr<FileDisk>> disks;
  std::vector<BlockDevice*> replicas;
  for (const std::string& path : images) {
    auto probe = FileDisk::open(path, 512, 1);
    if (!probe.ok()) {
      std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                   probe.error().to_string().c_str());
      return 1;
    }
    Bytes block0(512);
    if (!probe.value().read(0, block0).ok()) return 1;
    auto desc = DiskDescriptor::decode(
        ByteSpan(block0.data(), DiskDescriptor::kDiskSize));
    if (!desc.ok()) {
      std::fprintf(stderr, "%s: %s (format it with bullet_tool)\n",
                   path.c_str(), desc.error().to_string().c_str());
      return 1;
    }
    const std::uint64_t blocks =
        static_cast<std::uint64_t>(desc.value().control_blocks) +
        desc.value().data_blocks;
    auto disk = FileDisk::open(path, desc.value().block_size, blocks);
    if (!disk.ok()) return 1;
    disks.push_back(std::make_unique<FileDisk>(std::move(disk).value()));
    replicas.push_back(disks.back().get());
  }
  auto mirror = MirroredDisk::create(replicas);
  if (!mirror.ok()) {
    std::fprintf(stderr, "mirror: %s\n", mirror.error().to_string().c_str());
    return 1;
  }
  auto mirror_disk = std::move(mirror).value();

  BulletConfig config;
  config.cache_bytes = cache_mb << 20;
  config.io_threads = io_threads;
  config.max_inflight_fills = max_inflight;
  auto server = BulletServer::start(&mirror_disk, config);
  if (!server.ok()) {
    std::fprintf(stderr, "boot: %s\n", server.error().to_string().c_str());
    return 1;
  }
  const auto& boot = server.value()->boot_report();
  std::fprintf(stderr, "bullet: %llu files, %llu repairs at boot\n",
               static_cast<unsigned long long>(boot.files),
               static_cast<unsigned long long>(boot.repairs()));

  // Replicated pair: connect the peer link and, if the peer is already up,
  // reconcile before taking traffic so a restarted replica returns current.
  std::unique_ptr<rpc::UdpTransport> peer_link;
  if (peer_port != 0) {
    rpc::UdpClientOptions peer_options;
    peer_options.server_udp_port = peer_port;
    auto link = rpc::UdpTransport::connect(peer_options);
    if (!link.ok()) {
      std::fprintf(stderr, "peer: %s\n", link.error().to_string().c_str());
      return 1;
    }
    peer_link = std::move(link).value();
    server.value()->attach_replica(peer_link.get(), role);
    const auto status = server.value()->repl_status();
    if (status.peer_healthy) {
      auto resync = server.value()->resync_with_peer();
      if (resync.ok()) {
        std::fprintf(stderr,
                     "resync: pulled %llu, pushed %llu, erases %llu\n",
                     static_cast<unsigned long long>(resync.value().files_pulled),
                     static_cast<unsigned long long>(resync.value().files_pushed),
                     static_cast<unsigned long long>(
                         resync.value().erases_applied));
      } else {
        std::fprintf(stderr, "resync failed (serving degraded): %s\n",
                     resync.error().to_string().c_str());
      }
    } else {
      std::fprintf(stderr, "peer on port %u not answering; serving solo "
                   "until it resyncs\n", peer_port);
    }
  }

  // Directory server over the local (in-process) path to the Bullet server.
  rpc::LoopbackTransport local;
  (void)local.register_service(server.value().get());
  BulletClient storage(&local, server.value()->super_capability());
  dir::DirConfig dir_config;
  BootstrapFile bootstrap;
  const bool restored = load_bootstrap(bootstrap_path, &bootstrap);
  if (restored) dir_config.restore_from = bootstrap.snapshot;
  auto dir_server = dir::DirServer::start(storage, dir_config);
  if (!dir_server.ok()) {
    std::fprintf(stderr, "dir: %s\n", dir_server.error().to_string().c_str());
    return 1;
  }
  if (!restored) {
    auto root = dir_server.value()->create_dir();
    if (!root.ok()) return 1;
    bootstrap.root = root.value();
  }

  // Network front door.
  rpc::UdpServerOptions udp_options;
  udp_options.udp_port = udp_port;
  udp_options.workers = workers;
  udp_options.max_queue = max_queue;
  udp_options.max_client_queue = max_client_queue;
  udp_options.shed_retry_ms = shed_retry_ms;
  auto udp = rpc::UdpServer::start(udp_options);
  if (!udp.ok()) {
    std::fprintf(stderr, "udp: %s\n", udp.error().to_string().c_str());
    return 1;
  }
  server.value()->attach_io_counters(&udp.value()->io_counters());
  SerializedService dir_service(dir_server.value().get());
  (void)udp.value()->register_service(server.value().get());
  (void)udp.value()->register_service(&dir_service);

  std::printf("udp-port: %u\n", udp.value()->port());
  std::printf("bullet-cap: %s\n",
              server.value()->super_capability().to_string().c_str());
  std::printf("dir-cap: %s\n",
              dir_server.value()->super_capability().to_string().c_str());
  std::printf("root-cap: %s\n", bootstrap.root.to_string().c_str());
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  // Clean shutdown: persist the directory state and sync the disks. The
  // checkpoint runs while still attached: a backup must write its snapshot
  // file with top-down slot allocation, or two replicas shut down during a
  // partition land their snapshots on the same slot (a resync conflict).
  udp.value()->stop();
  auto snapshot = dir_server.value()->checkpoint();
  if (peer_link != nullptr) server.value()->detach_replica();
  if (snapshot.ok()) {
    bootstrap.snapshot = snapshot.value();
    if (!save_bootstrap(bootstrap_path, bootstrap)) {
      std::fprintf(stderr, "warning: could not save %s\n",
                   bootstrap_path.c_str());
    }
  }
  (void)server.value()->sync();
  std::fprintf(stderr, "shut down cleanly\n");
  return 0;
}
