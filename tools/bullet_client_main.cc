// bullet_client — talk to a running bullet_server over the network.
//
//   bullet_client --port N --cap BULLET-CAP put <local-file> [pfactor]
//   bullet_client --port N get <capability> [out-file]
//   bullet_client --port N rm  <capability>
//   bullet_client --port N --cap BULLET-CAP stats
//
//   # with the directory server (caps printed by bullet_server):
//   bullet_client --port N --dir DIR-CAP --root ROOT-CAP ls   [path]
//   bullet_client --port N --dir DIR-CAP --root ROOT-CAP name <path> <cap>
//   bullet_client --port N --dir DIR-CAP --root ROOT-CAP cat  <path>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bullet/client.h"
#include "dir/client.h"
#include "rpc/udp_transport.h"

using namespace bullet;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: bullet_client --port N [--cap CAP] [--dir CAP --root CAP] "
      "<command> [args]\n"
      "  put <file> [pfactor]    store a file (needs --cap)\n"
      "  get <capability> [out]  fetch a file\n"
      "  rm  <capability>        delete a file\n"
      "  stats                   server statistics (needs --cap)\n"
      "  ls [path]               list a directory (needs --dir/--root)\n"
      "  name <path> <cap>       bind a name (needs --dir/--root)\n"
      "  cat <path>              resolve + fetch (needs --dir/--root)\n");
  return 2;
}

int fail(const Error& error) {
  std::fprintf(stderr, "error: %s\n", error.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  Capability bullet_cap, dir_cap, root_cap;
  std::vector<std::string> rest;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_cap = [&](Capability* out) -> bool {
      if (i + 1 >= argc) return false;
      const auto cap = Capability::from_string(argv[++i]);
      if (!cap) return false;
      *out = *cap;
      return true;
    };
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--cap") {
      if (!next_cap(&bullet_cap)) return usage();
    } else if (arg == "--dir") {
      if (!next_cap(&dir_cap)) return usage();
    } else if (arg == "--root") {
      if (!next_cap(&root_cap)) return usage();
    } else {
      rest.push_back(arg);
    }
  }
  if (port == 0 || rest.empty()) return usage();

  rpc::UdpClientOptions options;
  options.server_udp_port = port;
  auto transport = rpc::UdpTransport::connect(options);
  if (!transport.ok()) return fail(transport.error());
  BulletClient files(transport.value().get(), bullet_cap);
  dir::DirClient names(transport.value().get(), dir_cap);

  const std::string& command = rest[0];
  if (command == "put") {
    if (rest.size() < 2 || bullet_cap.is_null()) return usage();
    std::ifstream in(rest[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", rest[1].c_str());
      return 1;
    }
    Bytes data((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    const int pfactor =
        rest.size() >= 3 ? std::atoi(rest[2].c_str()) : 1;
    auto cap = files.create(data, pfactor);
    if (!cap.ok()) return fail(cap.error());
    std::printf("%s\n", cap.value().to_string().c_str());
    return 0;
  }
  if (command == "get") {
    if (rest.size() < 2) return usage();
    const auto cap = Capability::from_string(rest[1]);
    if (!cap) return usage();
    auto data = files.read_whole(*cap);
    if (!data.ok()) return fail(data.error());
    if (rest.size() >= 3) {
      std::ofstream out(rest[2], std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(data.value().data()),
                static_cast<std::streamsize>(data.value().size()));
      if (!out) return 1;
    } else {
      std::fwrite(data.value().data(), 1, data.value().size(), stdout);
    }
    return 0;
  }
  if (command == "rm") {
    if (rest.size() < 2) return usage();
    const auto cap = Capability::from_string(rest[1]);
    if (!cap) return usage();
    const Status st = files.erase(*cap);
    if (!st.ok()) return fail(st.error());
    return 0;
  }
  if (command == "stats") {
    if (bullet_cap.is_null()) return usage();
    auto stats = files.stats();
    if (!stats.ok()) return fail(stats.error());
    std::printf("files: %llu  creates: %llu  reads: %llu  deletes: %llu\n"
                "free: %llu bytes in %llu hole(s)  replicas healthy: %llu\n",
                static_cast<unsigned long long>(stats.value().files_live),
                static_cast<unsigned long long>(stats.value().creates),
                static_cast<unsigned long long>(stats.value().reads),
                static_cast<unsigned long long>(stats.value().deletes),
                static_cast<unsigned long long>(stats.value().disk_free_bytes),
                static_cast<unsigned long long>(stats.value().disk_holes),
                static_cast<unsigned long long>(
                    stats.value().healthy_replicas));
    return 0;
  }
  if (command == "ls") {
    if (root_cap.is_null()) return usage();
    auto dir = rest.size() >= 2 ? names.resolve(root_cap, rest[1])
                                : Result<Capability>(root_cap);
    if (!dir.ok()) return fail(dir.error());
    auto entries = names.list(dir.value());
    if (!entries.ok()) return fail(entries.error());
    for (const auto& entry : entries.value()) {
      std::printf("%-30s %s\n", entry.name.c_str(),
                  entry.target.to_string().c_str());
    }
    return 0;
  }
  if (command == "name") {
    if (rest.size() < 3 || root_cap.is_null()) return usage();
    const auto target = Capability::from_string(rest[2]);
    if (!target) return usage();
    // Split path into parent + leaf.
    const auto parts = dir::split_path(rest[1]);
    if (parts.empty()) return usage();
    Capability parent = root_cap;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
      auto next = names.lookup(parent, parts[i]);
      if (!next.ok()) return fail(next.error());
      parent = next.value();
    }
    const Status st = names.enter(parent, parts.back(), *target);
    if (!st.ok()) return fail(st.error());
    return 0;
  }
  if (command == "cat") {
    if (rest.size() < 2 || root_cap.is_null()) return usage();
    auto cap = names.resolve(root_cap, rest[1]);
    if (!cap.ok()) return fail(cap.error());
    auto data = files.read_whole(cap.value());
    if (!data.ok()) return fail(data.error());
    std::fwrite(data.value().data(), 1, data.value().size(), stdout);
    return 0;
  }
  return usage();
}
