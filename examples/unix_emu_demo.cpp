// UNIX emulation demo: a POSIX-shaped program running on Bullet + the
// directory server ("Recently we have implemented a UNIX emulation on top
// of the Bullet service supporting a wealth of existing software").
//
// Builds a small project tree, writes and edits files through
// open/read/write/lseek/close, and shows how each close() becomes a new
// immutable file version behind the scenes.
//
// Run:  ./build/examples/unix_emu_demo
#include <cstdio>
#include <string>

#include "bullet/client.h"
#include "bullet/server.h"
#include "dir/client.h"
#include "dir/server.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "rpc/transport.h"
#include "unixemu/unix_fs.h"

using namespace bullet;
namespace flags = unixemu::open_flags;

int main() {
  MemDisk disk_a(512, 8192), disk_b(512, 8192);
  if (!BulletServer::format(disk_a, 512).ok()) return 1;
  if (!disk_b.restore(disk_a.snapshot()).ok()) return 1;
  auto mirror = MirroredDisk::create({&disk_a, &disk_b});
  auto mirror_disk = std::move(mirror).value();
  auto server = BulletServer::start(&mirror_disk, BulletConfig());
  if (!server.ok()) return 1;

  rpc::LoopbackTransport transport;
  (void)transport.register_service(server.value().get());
  BulletClient files(&transport, server.value()->super_capability());
  auto dir_server = dir::DirServer::start(files, dir::DirConfig());
  if (!dir_server.ok()) return 1;
  (void)transport.register_service(dir_server.value().get());
  dir::DirClient names(&transport, dir_server.value()->super_capability());

  auto root = names.create_dir();
  if (!root.ok()) return 1;
  unixemu::UnixFs fs(files, names, root.value());

  // mkdir -p src && echo ... > src/main.c
  if (!fs.mkdir("src").ok()) return 1;
  auto fd = fs.open("src/main.c", flags::kWrite | flags::kCreate);
  if (!fd.ok()) return 1;
  (void)fs.write(fd.value(), as_span("#include <stdio.h>\n\nint main(void) "
                                     "{\n  puts(\"hello\");\n}\n"));
  if (!fs.close(fd.value()).ok()) return 1;
  std::printf("wrote src/main.c (%llu bytes)\n",
              static_cast<unsigned long long>(fs.stat("src/main.c").value().size));

  // Append a log line twice (>> semantics).
  for (int i = 0; i < 2; ++i) {
    auto log = fs.open("build.log",
                       flags::kWrite | flags::kCreate | flags::kAppend);
    if (!log.ok()) return 1;
    const std::string line = "build " + std::to_string(i) + ": ok\n";
    (void)fs.write(log.value(), as_span(line));
    if (!fs.close(log.value()).ok()) return 1;
  }

  // sed-like in-place edit: read, patch, write back.
  auto edit = fs.open("src/main.c", flags::kRead | flags::kWrite);
  if (!edit.ok()) return 1;
  auto text = fs.read(edit.value(), 1 << 16);
  if (!text.ok()) return 1;
  std::string source = to_string(text.value());
  const auto at = source.find("hello");
  if (at != std::string::npos) source.replace(at, 5, "bullet");
  (void)fs.lseek(edit.value(), 0, unixemu::Whence::set);
  (void)fs.ftruncate(edit.value(), 0);
  (void)fs.write(edit.value(), as_span(source));
  if (!fs.close(edit.value()).ok()) return 1;
  std::printf("patched src/main.c in place (a new immutable version)\n");

  // mv and ls.
  if (!fs.mkdir("src/old").ok()) return 1;
  if (!fs.rename("build.log", "src/old/build.log").ok()) return 1;

  std::printf("\n$ ls -R\n");
  for (const char* path : {"/", "src", "src/old"}) {
    std::printf("%s:\n", path);
    auto listing = fs.readdir(path);  // named: the Result must outlive the loop
    if (!listing.ok()) return 1;
    for (const auto& name : listing.value()) {
      std::printf("  %s\n", name.c_str());
    }
  }

  std::printf("\n$ cat src/main.c\n");
  auto cat = fs.open("src/main.c", flags::kRead);
  if (!cat.ok()) return 1;
  std::printf("%s", to_string(fs.read(cat.value(), 1 << 16).value()).c_str());
  (void)fs.close(cat.value());

  std::printf("\n$ cat src/old/build.log\n%s",
              [&] {
                auto f = fs.open("src/old/build.log", flags::kRead);
                if (!f.ok()) return std::string("(missing)\n");
                auto body = fs.read(f.value(), 1 << 16);
                (void)fs.close(f.value());
                return body.ok() ? to_string(body.value())
                                 : std::string("(error)\n");
              }()
                  .c_str());

  // Under the hood: every path component is a capability; every file is an
  // immutable Bullet object.
  auto info = fs.stat("src/main.c");
  if (!info.ok()) return 1;
  std::printf("\nsrc/main.c is Bullet object %s\n",
              info.value().capability.to_string().c_str());
  return 0;
}
