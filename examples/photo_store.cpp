// Photo store: the immutable-object-store use case.
//
// Ingests a corpus of "photos" (deterministic random blobs) into the Bullet
// server, names them through the directory service under albums, then
// simulates a crash of the main disk mid-service and shows that (a) every
// photo survives via the replica, (b) a resilvered drive restores
// redundancy, and (c) integrity is verifiable end to end with checksums.
//
// Run:  ./build/examples/photo_store
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "common/crc.h"
#include "common/rng.h"
#include "dir/client.h"
#include "dir/server.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "rpc/transport.h"

using namespace bullet;

namespace {

struct Photo {
  std::string album;
  std::string name;
  std::uint32_t crc;
};

}  // namespace

int main() {
  // Infrastructure: two replicas, bullet + directory servers, one transport.
  MemDisk disk_a(512, 1 << 14), disk_b(512, 1 << 14);  // 8 MB each
  if (!BulletServer::format(disk_a, 1024).ok()) return 1;
  if (!disk_b.restore(disk_a.snapshot()).ok()) return 1;
  auto mirror = MirroredDisk::create({&disk_a, &disk_b});
  auto mirror_disk = std::move(mirror).value();
  // Keep the RAM cache smaller than the corpus so integrity sweeps really
  // exercise the disks, not just the cache.
  BulletConfig config;
  config.cache_bytes = 512 << 10;
  auto server = BulletServer::start(&mirror_disk, config);
  if (!server.ok()) return 1;

  rpc::LoopbackTransport transport;
  (void)transport.register_service(server.value().get());
  BulletClient files(&transport, server.value()->super_capability());

  auto dir_server = dir::DirServer::start(files, dir::DirConfig());
  if (!dir_server.ok()) return 1;
  (void)transport.register_service(dir_server.value().get());
  dir::DirClient names(&transport, dir_server.value()->super_capability());

  auto root = names.create_dir();
  if (!root.ok()) return 1;

  // Ingest: 3 albums x 12 photos, 20-80 KB each.
  Rng rng(2026);
  std::vector<Photo> catalog;
  std::uint64_t total_bytes = 0;
  for (const char* album : {"croatia", "birthday", "misc"}) {
    auto album_dir = names.make_path(root.value(), album);
    if (!album_dir.ok()) return 1;
    for (int i = 0; i < 12; ++i) {
      const std::string name = "img_" + std::to_string(1000 + i) + ".jpg";
      const Bytes blob = rng.next_bytes(rng.next_range(20 << 10, 80 << 10));
      auto cap = files.create(blob, 2);  // durable on both disks
      if (!cap.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     cap.error().to_string().c_str());
        return 1;
      }
      if (!names.enter(album_dir.value(), name, cap.value()).ok()) return 1;
      catalog.push_back({album, name, crc32c(blob)});
      total_bytes += blob.size();
    }
  }
  std::printf("ingested %zu photos (%" PRIu64 " KB) into 3 albums\n",
              catalog.size(), total_bytes >> 10);

  // Integrity sweep by path.
  auto verify_all = [&]() -> int {
    int bad = 0;
    for (const Photo& photo : catalog) {
      auto cap = names.resolve(root.value(), photo.album + "/" + photo.name);
      if (!cap.ok()) {
        ++bad;
        continue;
      }
      auto blob = files.read_whole(cap.value());
      if (!blob.ok() || crc32c(blob.value()) != photo.crc) ++bad;
    }
    return bad;
  };
  std::printf("integrity sweep: %d corrupt/missing\n", verify_all());

  // Disaster: the main disk dies mid-service.
  disk_a.fail_device();
  std::printf("\n*** main disk failed ***\n");
  std::printf("integrity sweep on replica: %d corrupt/missing\n",
              verify_all());
  auto stats = files.stats();
  std::printf("healthy replicas: %" PRIu64 "\n",
              stats.ok() ? stats.value().healthy_replicas : 0);

  // Operator replaces the drive; full-copy recovery, as in the paper.
  disk_a.clear_faults();
  if (!mirror_disk.resilver(0).ok()) return 1;
  std::printf("\nreplaced drive resilvered; healthy replicas: %d\n",
              mirror_disk.healthy_count());

  // Reboot from disk (cold cache, fsck) and verify once more.
  server.value().reset();
  auto reborn = BulletServer::start(&mirror_disk, config);
  if (!reborn.ok()) return 1;
  std::printf("rebooted: fsck scanned %" PRIu64 " inodes, %" PRIu64
              " repairs\n",
              reborn.value()->boot_report().inodes_scanned,
              reborn.value()->boot_report().repairs());
  (void)transport.unregister_service(reborn.value()->public_port());
  (void)transport.register_service(reborn.value().get());
  std::printf("integrity sweep after reboot: %d corrupt/missing\n",
              verify_all());
  return 0;
}
