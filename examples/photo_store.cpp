// Photo store: the immutable-object-store use case, on a sharded cluster.
//
// Ingests a corpus of "photos" (deterministic random blobs) into a
// two-shard Bullet cluster through a RoutingClient — creates spread across
// the shards, reads go straight to the owner by consistent hash — and
// names them through the directory service under albums. Mid-service the
// operator adds a third shard: the rebalance copies only the ring delta
// while photos keep being read and new ones keep arriving, and an
// integrity sweep straddling the flip shows that no photo was ever
// unreadable. Checksums verify end-to-end integrity throughout.
//
// Run:  ./build/examples/photo_store
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "cluster/rebalance.h"
#include "cluster/routing_client.h"
#include "common/crc.h"
#include "common/rng.h"
#include "dir/client.h"
#include "dir/server.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "rpc/transport.h"

using namespace bullet;

namespace {

struct Photo {
  std::string album;
  std::string name;
  std::uint32_t crc;
};

// One cluster shard: its own disk and server. All shards keep the default
// port and secret, so one capability space spans the cluster; each answers
// on its own loopback link.
struct Shard {
  explicit Shard(std::uint64_t rng_seed) : disk(512, 1 << 14) {  // 8 MB
    if (!BulletServer::format(disk, 1024).ok()) std::abort();
    auto mirror_result = MirroredDisk::create({&disk});
    mirror = std::make_unique<MirroredDisk>(std::move(mirror_result).value());
    BulletConfig config;
    config.cache_bytes = 512 << 10;
    config.rng_seed = rng_seed;
    auto server_result = BulletServer::start(mirror.get(), config);
    if (!server_result.ok()) std::abort();
    server = std::move(server_result).value();
    (void)net.register_service(server.get());
  }

  MemDisk disk;
  std::unique_ptr<MirroredDisk> mirror;
  std::unique_ptr<BulletServer> server;
  rpc::LoopbackTransport net;
};

}  // namespace

int main() {
  // Three shards exist as machines; only the first two join the cluster at
  // first. Endpoint tokens in the placement map index this array.
  std::vector<std::unique_ptr<Shard>> shards;
  for (int i = 0; i < 3; ++i) {
    shards.push_back(std::make_unique<Shard>(0x9080 + 0x101 * i));
  }
  const auto resolver = [&](const cluster::ShardInfo& info) -> rpc::Transport* {
    if (info.endpoints.empty() || info.endpoints.front() >= shards.size()) {
      return nullptr;
    }
    return &shards[info.endpoints.front()]->net;
  };

  // The directory server (names and the placement map) keeps its own
  // metadata on a separate small Bullet instance — never a cluster shard,
  // so rebalance can't move its files out from under it.
  MemDisk dir_disk(512, 1 << 13);
  if (!BulletServer::format(dir_disk, 256).ok()) return 1;
  auto dir_mirror_result = MirroredDisk::create({&dir_disk});
  auto dir_mirror = std::move(dir_mirror_result).value();
  auto dir_storage_server = BulletServer::start(&dir_mirror, BulletConfig());
  if (!dir_storage_server.ok()) return 1;
  rpc::LoopbackTransport dir_storage_net, dir_net;
  (void)dir_storage_net.register_service(dir_storage_server.value().get());
  BulletClient dir_storage(&dir_storage_net,
                           dir_storage_server.value()->super_capability());
  auto dir_server = dir::DirServer::start(dir_storage, dir::DirConfig());
  if (!dir_server.ok()) return 1;
  (void)dir_net.register_service(dir_server.value().get());
  dir::DirClient names(&dir_net, dir_server.value()->super_capability());

  // Bootstrap the two-shard placement, then route everything through it.
  const Capability cluster_super = shards[0]->server->super_capability();
  cluster::Rebalancer rebalancer(&names, cluster_super, resolver);
  cluster::PlacementMap initial;
  initial.shards = {{1, {0}}, {2, {1}}};
  if (!rebalancer.bootstrap(std::move(initial)).ok()) return 1;
  cluster::RoutingClient photos(&names, cluster_super, resolver);

  auto root = names.create_dir();
  if (!root.ok()) return 1;

  // Ingest: 3 albums x 12 photos, 20-80 KB each, spread across the shards.
  Rng rng(2026);
  std::vector<Photo> catalog;
  std::uint64_t total_bytes = 0;
  for (const char* album : {"croatia", "birthday", "misc"}) {
    auto album_dir = names.make_path(root.value(), album);
    if (!album_dir.ok()) return 1;
    for (int i = 0; i < 12; ++i) {
      const std::string name = "img_" + std::to_string(1000 + i) + ".jpg";
      const Bytes blob = rng.next_bytes(rng.next_range(20 << 10, 80 << 10));
      auto cap = photos.create(blob, 1);
      if (!cap.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     cap.error().to_string().c_str());
        return 1;
      }
      if (!names.enter(album_dir.value(), name, cap.value()).ok()) return 1;
      catalog.push_back({album, name, crc32c(blob)});
      total_bytes += blob.size();
    }
  }
  const auto occupancy = [&](std::size_t n) {
    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
      out += (i ? " / " : "") +
             std::to_string(shards[i]->server->live_files());
    }
    return out;
  };
  std::printf("ingested %zu photos (%" PRIu64 " KB) into 3 albums\n",
              catalog.size(), total_bytes >> 10);
  std::printf("shard occupancy: %s photos\n", occupancy(2).c_str());

  // Integrity sweep by path: resolve the name, read through the router,
  // compare checksums.
  auto verify_all = [&]() -> int {
    int bad = 0;
    for (const Photo& photo : catalog) {
      auto cap = names.resolve(root.value(), photo.album + "/" + photo.name);
      if (!cap.ok()) {
        ++bad;
        continue;
      }
      auto blob = photos.read_whole(cap.value());
      if (!blob.ok() || crc32c(blob.value()) != photo.crc) ++bad;
    }
    return bad;
  };
  std::printf("integrity sweep: %d corrupt/missing\n", verify_all());

  // Growth: the albums keep filling, so the operator adds shard 3 while
  // the store stays live. Copy the ring delta in small steps, with uploads
  // and a full sweep interleaved — clients never notice.
  std::printf("\n*** adding shard 3 under live load ***\n");
  auto plan = rebalancer.plan({{1, {0}}, {2, {1}}, {3, {2}}});
  if (!plan.ok()) return 1;
  std::printf("rebalance plan: %zu of %zu photos move (ring delta only)\n",
              plan.value().moves.size(), catalog.size());
  auto misc_dir = names.resolve(root.value(), "misc");
  if (!misc_dir.ok()) return 1;
  int uploaded_during_move = 0;
  while (!plan.value().copy_done()) {
    if (!rebalancer.copy_step(plan.value(), 4).ok()) return 1;
    // An upload races the copy: it lands under the old map and is exactly
    // the stray the reconcile pass exists to re-home.
    const std::string name =
        "img_" + std::to_string(2000 + uploaded_during_move) + ".jpg";
    const Bytes blob = rng.next_bytes(rng.next_range(20 << 10, 80 << 10));
    auto cap = photos.create(blob, 1);
    if (!cap.ok()) return 1;
    if (!names.enter(misc_dir.value(), name, cap.value()).ok()) return 1;
    catalog.push_back({"misc", name, crc32c(blob)});
    ++uploaded_during_move;
  }
  if (!rebalancer.flip(plan.value()).ok()) return 1;
  auto epoch = names.map_epoch();
  std::printf("flipped to epoch %" PRIu64 "; sweep mid-rebalance: %d "
              "corrupt/missing\n",
              epoch.ok() ? epoch.value() : 0, verify_all());
  cluster::Rebalancer::Report report;
  if (!rebalancer.reconcile(plan.value(), &report).ok()) return 1;
  if (!rebalancer.drain(plan.value(), &report).ok()) return 1;
  std::printf("reconciled %" PRIu64 " stragglers (incl. the racing uploads), "
              "drained %" PRIu64 " old copies\n",
              report.reconciled, report.drained);
  std::printf("shard occupancy: %s photos\n", occupancy(3).c_str());

  // Fresh client (knows only the new map) verifies the whole catalog.
  cluster::RoutingClient fresh(&names, cluster_super, resolver);
  int bad = 0;
  for (const Photo& photo : catalog) {
    auto cap = names.resolve(root.value(), photo.album + "/" + photo.name);
    if (!cap.ok()) {
      ++bad;
      continue;
    }
    auto blob = fresh.read_whole(cap.value());
    if (!blob.ok() || crc32c(blob.value()) != photo.crc) ++bad;
  }
  std::printf("final sweep from a fresh client: %d corrupt/missing "
              "(%zu photos)\n",
              bad, catalog.size());
  return bad == 0 ? 0 : 1;
}
