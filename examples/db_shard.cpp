// Sharded database over immutable files — the paper's §2 suggestion made
// concrete:
//
//   "Data bases can be subdivided over many smaller Bullet files, for
//    example based on the identifying keys."
//
// A tiny user database: records hash into bucket files; each update
// rewrites one small bucket as a new immutable version and publishes it
// with compare-and-swap. Two clients update concurrently; the loser of a
// race retries transparently. Finally the database reopens from the
// directory alone — no other persistent state exists.
//
// Run:  ./build/examples/db_shard
#include <cinttypes>
#include <cstdio>
#include <string>

#include "bullet/client.h"
#include "bullet/server.h"
#include "dir/client.h"
#include "dir/server.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "kvstore/kv_store.h"
#include "rpc/transport.h"

using namespace bullet;

int main() {
  MemDisk disk_a(512, 1 << 14), disk_b(512, 1 << 14);
  if (!BulletServer::format(disk_a, 1024).ok()) return 1;
  if (!disk_b.restore(disk_a.snapshot()).ok()) return 1;
  auto mirror = MirroredDisk::create({&disk_a, &disk_b});
  auto mirror_disk = std::move(mirror).value();
  auto server = BulletServer::start(&mirror_disk, BulletConfig());
  if (!server.ok()) return 1;

  rpc::LoopbackTransport transport;
  (void)transport.register_service(server.value().get());
  BulletClient files(&transport, server.value()->super_capability());
  auto dir_server = dir::DirServer::start(files, dir::DirConfig());
  if (!dir_server.ok()) return 1;
  (void)transport.register_service(dir_server.value().get());
  dir::DirClient names(&transport, dir_server.value()->super_capability());

  auto db_dir = names.create_dir();
  if (!db_dir.ok()) return 1;

  kvstore::KvConfig config;
  config.buckets = 8;
  auto db = kvstore::KvStore::create(files, names, db_dir.value(), config);
  if (!db.ok()) return 1;
  std::printf("created users db: %u bucket files\n", db.value().bucket_count());

  // Load some records.
  struct User {
    const char* id;
    const char* record;
  };
  const User users[] = {
      {"ast", "Andrew S. Tanenbaum, Vrije Universiteit"},
      {"rvr", "Robbert van Renesse, Vrije Universiteit"},
      {"wilschut", "Annita Wilschut, Universiteit Twente"},
      {"sape", "Sape Mullender, CWI Amsterdam"},
      {"henri", "Henri Bal, Vrije Universiteit"},
  };
  for (const User& user : users) {
    if (!db.value().put(user.id, as_span(user.record)).ok()) return 1;
  }
  std::printf("loaded %zu records into %" PRIu64 " live Bullet files total\n",
              std::size(users), server.value()->live_files());

  // Point lookup: touches exactly one small bucket.
  auto record = db.value().get("rvr");
  if (!record.ok() || !record.value().has_value()) return 1;
  std::printf("get(rvr) -> \"%s\"\n", to_string(*record.value()).c_str());

  // Two "clients" race on the same store (one bucket each put).
  auto other = kvstore::KvStore::open(files, names, db_dir.value(),
                                      kvstore::KvConfig());
  if (!other.ok()) return 1;
  for (int i = 0; i < 8; ++i) {
    if (!db.value().put("shared" + std::to_string(i), as_span("from-A")).ok())
      return 1;
    if (!other.value()
             .put("shared" + std::to_string(i), as_span("from-B"))
             .ok())
      return 1;
  }
  std::printf("after interleaved writers: %" PRIu64
              " records (CAS conflicts seen: %" PRIu64 " + %" PRIu64 ")\n",
              db.value().size().value_or(0), db.value().cas_conflicts(),
              other.value().cas_conflicts());

  // A small update rewrites one bucket, not the database.
  const auto creates_before = server.value()->stats().creates;
  if (!db.value().put("ast", as_span("Andrew S. Tanenbaum (updated)")).ok())
    return 1;
  std::printf("one update -> %" PRIu64 " new file version(s), not %u\n",
              server.value()->stats().creates - creates_before,
              db.value().bucket_count());

  // Reopen purely from the directory: full scan in key order.
  auto reopened = kvstore::KvStore::open(files, names, db_dir.value(),
                                         kvstore::KvConfig());
  if (!reopened.ok()) return 1;
  auto keys = reopened.value().keys();
  if (!keys.ok()) return 1;
  std::printf("\nscan of reopened db (%zu keys):\n", keys.value().size());
  for (const auto& key : keys.value()) {
    auto value = reopened.value().get(key);
    if (!value.ok() || !value.value().has_value()) return 1;
    std::printf("  %-10s %s\n", key.c_str(),
                to_string(*value.value()).c_str());
  }
  return 0;
}
