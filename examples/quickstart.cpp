// Quickstart: stand up a Bullet file server on two mirrored disks, use the
// four paper operations through the client API, and peek at the server's
// internals (layout, cache, free list).
//
// Run:  ./build/examples/quickstart
#include <cinttypes>
#include <cstdio>

#include "bullet/client.h"
#include "bullet/server.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "rpc/transport.h"

using namespace bullet;

int main() {
  // 1. Two identical replica disks, as in the paper's deployment.
  MemDisk disk_a(512, 4096);  // 2 MB each
  MemDisk disk_b(512, 4096);
  if (!BulletServer::format(disk_a, 256).ok()) return 1;
  if (!disk_b.restore(disk_a.snapshot()).ok()) return 1;
  auto mirror = MirroredDisk::create({&disk_a, &disk_b});
  if (!mirror.ok()) return 1;
  auto mirror_disk = std::move(mirror).value();

  // 2. Boot the server (reads the inode table, runs consistency checks).
  auto server = BulletServer::start(&mirror_disk, BulletConfig());
  if (!server.ok()) {
    std::fprintf(stderr, "boot failed: %s\n",
                 server.error().to_string().c_str());
    return 1;
  }
  std::printf("Bullet server up on port %s\n",
              server.value()->public_port().to_string().c_str());

  // 3. Talk to it over RPC, like any Amoeba client would.
  rpc::LoopbackTransport transport;
  if (!transport.register_service(server.value().get()).ok()) return 1;
  BulletClient client(&transport, server.value()->super_capability());

  // BULLET.CREATE — P-FACTOR 2: on both disks before we resume.
  auto cap = client.create(as_span("files are immutable, contiguous, fast"), 2);
  if (!cap.ok()) return 1;
  std::printf("created file, capability = %s\n",
              cap.value().to_string().c_str());

  // BULLET.SIZE then BULLET.READ, the sequence the paper prescribes.
  auto size = client.size(cap.value());
  std::printf("BULLET.SIZE    -> %u bytes\n", size.value_or(0));
  auto data = client.read_whole(cap.value());
  if (!data.ok()) return 1;
  std::printf("BULLET.READ    -> \"%s\"\n", to_string(data.value()).c_str());

  // Immutability: there is no write. Updates create new versions.
  std::vector<wire::FileEdit> edits;
  edits.push_back(wire::FileEdit::make_overwrite(10, to_bytes("IMMUTABLE")));
  auto v2 = client.create_from(cap.value(), edits, 2);
  if (!v2.ok()) return 1;
  std::printf("CREATE-FROM    -> new version \"%s\"\n",
              to_string(client.read_whole(v2.value()).value()).c_str());

  // A capability is the only key: flip one bit and the server refuses.
  Capability forged = cap.value();
  forged.check ^= 1;
  std::printf("forged cap     -> %s\n",
              client.read(forged).ok() ? "ACCEPTED (bug!)" : "rejected");

  // BULLET.DELETE.
  if (!client.erase(cap.value()).ok()) return 1;
  std::printf("BULLET.DELETE  -> old version gone\n");

  // 4. Server internals.
  auto stats = client.stats();
  if (!stats.ok()) return 1;
  const auto& s = stats.value();
  std::printf(
      "\nserver stats: %" PRIu64 " creates, %" PRIu64 " reads, %" PRIu64
      " deletes\n"
      "  cache: %" PRIu64 " hits / %" PRIu64 " misses, %" PRIu64
      " bytes free\n"
      "  disk:  %" PRIu64 " bytes free in %" PRIu64
      " hole(s), largest %" PRIu64 "; %" PRIu64 " healthy replicas\n",
      s.creates, s.reads, s.deletes, s.cache_hits, s.cache_misses,
      s.cache_free_bytes, s.disk_free_bytes, s.disk_holes,
      s.disk_largest_hole_bytes, s.healthy_replicas);

  auto report = client.fsck();
  if (!report.ok()) return 1;
  std::printf("fsck: %" PRIu64 " files, %" PRIu64 " repairs needed\n",
              report.value().files, report.value().repairs());
  return 0;
}
