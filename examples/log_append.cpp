// Log server demo: the append workload the immutable-file model handles
// badly, served by the paper's dedicated log server, with periodic archival
// of the log into immutable Bullet files.
//
// Run:  ./build/examples/log_append
#include <cinttypes>
#include <cstdio>
#include <string>

#include "bullet/client.h"
#include "bullet/server.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "logsvc/client.h"
#include "logsvc/server.h"
#include "rpc/transport.h"

using namespace bullet;

int main() {
  // Bullet server (for archives) + log server, each on its own disk.
  MemDisk bullet_a(512, 8192), bullet_b(512, 8192);
  if (!BulletServer::format(bullet_a, 256).ok()) return 1;
  if (!bullet_b.restore(bullet_a.snapshot()).ok()) return 1;
  auto mirror = MirroredDisk::create({&bullet_a, &bullet_b});
  auto mirror_disk = std::move(mirror).value();
  auto bullet_server = BulletServer::start(&mirror_disk, BulletConfig());
  if (!bullet_server.ok()) return 1;

  MemDisk log_disk(512, 8192);
  if (!logsvc::LogServer::format(log_disk, 32).ok()) return 1;
  auto log_server = logsvc::LogServer::start(&log_disk, logsvc::LogConfig());
  if (!log_server.ok()) return 1;

  rpc::LoopbackTransport transport;
  (void)transport.register_service(bullet_server.value().get());
  (void)transport.register_service(log_server.value().get());
  BulletClient archive_store(&transport,
                             bullet_server.value()->super_capability());
  logsvc::LogClient logs(&transport, log_server.value()->super_capability());

  auto access_log = logs.create_log();
  if (!access_log.ok()) return 1;
  std::printf("created access log, capability = %s\n",
              access_log.value().to_string().c_str());

  // A day of traffic: appends are O(record), not O(log).
  std::vector<Capability> archives;
  for (int hour = 0; hour < 24; ++hour) {
    for (int i = 0; i < 40; ++i) {
      char line[96];
      std::snprintf(line, sizeof line,
                    "1989-03-%02d %02d:%02d GET /pub/amoeba/file%03d 200\n",
                    14, hour, i, i * 7 % 997);
      if (!logs.append(access_log.value(), as_span(line)).ok()) return 1;
    }
    if ((hour + 1) % 8 == 0) {
      // Shift change: archive the whole log so far into an immutable file.
      auto snapshot = logs.snapshot(access_log.value(), archive_store, 2);
      if (!snapshot.ok()) return 1;
      archives.push_back(snapshot.value());
      std::printf("hour %2d: archived %" PRIu64
                  " bytes into immutable file (object %u)\n",
                  hour + 1, static_cast<std::uint64_t>(
                                archive_store.size(snapshot.value())
                                    .value_or(0)),
                  snapshot.value().object);
    }
  }

  const auto total = logs.size(access_log.value());
  std::printf("\nfinal log size: %" PRIu64 " bytes in %u free-extent units "
              "remaining\n",
              total.value_or(0), log_server.value()->free_extents());

  // Tail the log.
  const std::uint64_t n = total.value_or(0);
  const std::uint64_t tail_from = n > 120 ? n - 120 : 0;
  auto tail = logs.read_range(access_log.value(), tail_from, 120);
  if (!tail.ok()) return 1;
  std::printf("\n$ tail access.log\n%s", to_string(tail.value()).c_str());

  // The archives are ordinary immutable files: verify the newest one is a
  // prefix-consistent snapshot.
  auto newest = archive_store.read_whole(archives.back());
  auto prefix = logs.read_range(access_log.value(), 0, newest.value().size());
  if (!newest.ok() || !prefix.ok()) return 1;
  std::printf("\nnewest archive matches the live log prefix: %s\n",
              equal(newest.value(), prefix.value()) ? "yes" : "NO");
  return 0;
}
