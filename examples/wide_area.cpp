// Wide-area federation: multiple Bullet servers behind one naming tree.
//
//   "Gateways provide transparent communication among Amoeba sites
//    currently operating in four different countries. ... This has allowed
//    us to link multiple Bullet file servers together providing one single
//    large file service that crosses international borders."
//
// Two Bullet servers — "amsterdam" (local) and "tromso" (behind a simulated
// WAN hop) — share one directory tree. Capabilities carry the server port,
// so clients resolve a name and reach the right server transparently; only
// the latency differs. Client-side caching of the immutable files then
// hides the WAN entirely after first touch.
//
// Run:  ./build/examples/wide_area
#include <cstdio>
#include <string>

#include "bullet/caching_client.h"
#include "bullet/client.h"
#include "bullet/server.h"
#include "dir/client.h"
#include "dir/server.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "disk/sim_disk.h"
#include "rpc/transport.h"
#include "sim/testbed.h"

using namespace bullet;

namespace {

struct Site {
  Site(const char* label, std::uint64_t port, sim::Clock* clock)
      : name(label),
        raw(512, 1 << 13),
        sim_disk(&raw, sim::Testbed1989::disk(), clock) {
    (void)BulletServer::format(raw, 256);
    auto m = MirroredDisk::create({&sim_disk});
    mirror = std::make_unique<MirroredDisk>(std::move(m).value());
    BulletConfig config;
    config.private_port = port;
    config.clock = clock;
    server = BulletServer::start(mirror.get(), config).value();
  }

  std::string name;
  MemDisk raw;
  SimDisk sim_disk;
  std::unique_ptr<MirroredDisk> mirror;
  std::unique_ptr<BulletServer> server;
};

}  // namespace

int main() {
  sim::Clock clock;

  Site amsterdam("amsterdam", 0xA57, &clock);
  Site tromso("tromso", 0x7A0, &clock);

  // One transport; the remote site's cost profile includes the WAN hop
  // (~80 ms each way on a late-80s international link).
  rpc::SimTransport transport(sim::Testbed1989::net(), &clock);
  sim::ProtocolCosts wan = sim::Testbed1989::bullet_costs();
  wan.per_message_cpu += sim::from_ms(80);
  (void)transport.register_service(amsterdam.server.get(),
                                   sim::Testbed1989::bullet_costs());
  (void)transport.register_service(tromso.server.get(), wan);

  BulletClient local(&transport, amsterdam.server->super_capability());
  BulletClient remote(&transport, tromso.server->super_capability());

  // The directory server lives in Amsterdam and names objects on BOTH
  // servers — a single global namespace.
  auto dir_server = dir::DirServer::start(local, dir::DirConfig());
  if (!dir_server.ok()) return 1;
  (void)transport.register_service(dir_server.value().get(),
                                   sim::Testbed1989::bullet_costs());
  dir::DirClient names(&transport, dir_server.value()->super_capability());
  auto root = names.create_dir();
  if (!root.ok()) return 1;

  auto paper = local.create(as_span("The Design of a High-Performance File "
                                    "Server (stored in Amsterdam)"),
                            1);
  auto dataset = remote.create(as_span("aurora sensor readings "
                                       "(stored in Tromso)"),
                               1);
  if (!paper.ok() || !dataset.ok()) return 1;
  (void)names.enter(root.value(), "paper.txt", paper.value());
  (void)names.enter(root.value(), "aurora.dat", dataset.value());

  std::printf("one namespace, two countries:\n");
  std::printf("  paper.txt  -> port %s (amsterdam)\n",
              paper.value().port.to_string().c_str());
  std::printf("  aurora.dat -> port %s (tromso)\n\n",
              dataset.value().port.to_string().c_str());

  // Transparent access: resolve by name, read wherever the bytes live.
  for (const char* path : {"paper.txt", "aurora.dat"}) {
    auto cap = names.resolve(root.value(), path);
    if (!cap.ok()) return 1;
    const auto t0 = clock.now();
    auto data = local.read_whole(cap.value());  // any client stub works
    if (!data.ok()) return 1;
    std::printf("  read %-11s %6.1f ms   \"%.30s...\"\n", path,
                sim::to_ms(clock.now() - t0),
                to_string(data.value()).c_str());
  }

  // Client-side caching hides the WAN after first touch.
  CachingBulletClient cached(local, names, 1 << 20);
  std::printf("\nwith a caching client:\n");
  for (int round = 1; round <= 3; ++round) {
    const auto t0 = clock.now();
    auto data = cached.read_name(root.value(), "aurora.dat");
    if (!data.ok()) return 1;
    std::printf("  round %d: aurora.dat in %6.1f ms%s\n", round,
                sim::to_ms(clock.now() - t0),
                round == 1 ? "  (WAN fetch + cache fill)"
                           : "  (local name check, cached bytes)");
  }

  // Replication across sites by re-creating the immutable file remotely:
  // the bytes are identical, so either capability serves reads.
  auto mirror_cap = local.create(
      to_bytes(to_string(cached.read_name(root.value(), "aurora.dat")
                             .value_or(Bytes{}))),
      1);
  if (!mirror_cap.ok()) return 1;
  (void)names.enter(root.value(), "aurora.dat,local-mirror",
                    mirror_cap.value());
  const auto t0 = clock.now();
  (void)local.read_whole(mirror_cap.value());
  std::printf("\nafter geo-replication: local mirror read in %.1f ms\n",
              sim::to_ms(clock.now() - t0));
  return 0;
}
