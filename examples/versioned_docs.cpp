// Versioned documents: the paper's version mechanism in action.
//
//   "if we want to update a data structure that is stored on a file, we do
//    this by creating a new file holding the updated data structure. In
//    other words, we store files as sequences of versions."
//
// A tiny collaborative editor: each save produces a new immutable Bullet
// file via CREATE-FROM (only the edit script crosses the wire), the
// directory entry is swung atomically with compare-and-swap, and a history
// directory keeps named versions. A lost-update race is demonstrated and
// resolved.
//
// Run:  ./build/examples/versioned_docs
#include <cstdio>
#include <string>
#include <vector>

#include "bullet/client.h"
#include "bullet/server.h"
#include "dir/client.h"
#include "dir/server.h"
#include "disk/mem_disk.h"
#include "disk/mirrored_disk.h"
#include "rpc/transport.h"

using namespace bullet;

int main() {
  MemDisk disk_a(512, 8192), disk_b(512, 8192);
  if (!BulletServer::format(disk_a, 512).ok()) return 1;
  if (!disk_b.restore(disk_a.snapshot()).ok()) return 1;
  auto mirror = MirroredDisk::create({&disk_a, &disk_b});
  auto mirror_disk = std::move(mirror).value();
  auto server = BulletServer::start(&mirror_disk, BulletConfig());
  if (!server.ok()) return 1;

  rpc::LoopbackTransport transport;
  (void)transport.register_service(server.value().get());
  BulletClient files(&transport, server.value()->super_capability());
  auto dir_server = dir::DirServer::start(files, dir::DirConfig());
  if (!dir_server.ok()) return 1;
  (void)transport.register_service(dir_server.value().get());
  dir::DirClient names(&transport, dir_server.value()->super_capability());

  auto root = names.create_dir();
  auto history = names.make_path(root.value(), "history");
  if (!root.ok() || !history.ok()) return 1;

  // v1.
  auto v1 = files.create(as_span("# Design Notes\n\nBullet stores whole "
                                 "files contiguously.\n"),
                         2);
  if (!v1.ok()) return 1;
  if (!names.enter(root.value(), "notes.md", v1.value()).ok()) return 1;
  if (!names.enter(history.value(), "notes.md,v1", v1.value()).ok()) return 1;
  std::printf("v1 saved (%u bytes)\n", files.size(v1.value()).value_or(0));

  // v2: append a section server-side; only the edit ships over the wire.
  std::vector<wire::FileEdit> edits;
  edits.push_back(wire::FileEdit::make_append(
      to_bytes("\n## Immutability\n\nUpdates create new versions.\n")));
  auto v2 = files.create_from(v1.value(), edits, 2);
  if (!v2.ok()) return 1;
  auto swapped = names.cas_replace(root.value(), "notes.md", v1.value(),
                                   v2.value());
  if (!swapped.ok()) return 1;
  if (!names.enter(history.value(), "notes.md,v2", v2.value()).ok()) return 1;
  std::printf("v2 saved (%u bytes) — entry swung atomically\n",
              files.size(v2.value()).value_or(0));

  // A second editor still holding v2 races a third save.
  edits.clear();
  edits.push_back(wire::FileEdit::make_append(to_bytes("\n(editor A)\n")));
  auto from_a = files.create_from(v2.value(), edits, 2);
  edits.clear();
  edits.push_back(wire::FileEdit::make_append(to_bytes("\n(editor B)\n")));
  auto from_b = files.create_from(v2.value(), edits, 2);
  if (!from_a.ok() || !from_b.ok()) return 1;

  auto a_wins = names.cas_replace(root.value(), "notes.md", v2.value(),
                                  from_a.value());
  auto b_loses = names.cas_replace(root.value(), "notes.md", v2.value(),
                                   from_b.value());
  std::printf("editor A publish: %s\n", a_wins.ok() ? "ok" : "conflict");
  std::printf("editor B publish: %s (expected: its base version was "
              "superseded)\n",
              b_loses.ok() ? "ok" : "conflict");
  if (b_loses.ok()) return 1;  // must conflict
  // B rebases: re-apply its edit to the current head.
  auto head = names.lookup(root.value(), "notes.md");
  if (!head.ok()) return 1;
  auto rebased = files.create_from(head.value(), edits, 2);
  if (!rebased.ok()) return 1;
  auto retried = names.cas_replace(root.value(), "notes.md", head.value(),
                                   rebased.value());
  std::printf("editor B rebase + publish: %s\n",
              retried.ok() ? "ok" : "conflict");
  (void)files.erase(from_b.value());  // orphaned attempt

  // Show the history and the current document.
  std::printf("\nhistory:\n");
  auto entries = names.list(history.value());
  if (!entries.ok()) return 1;
  for (const auto& entry : entries.value()) {
    std::printf("  %-14s %u bytes\n", entry.name.c_str(),
                files.size(entry.target).value_or(0));
  }
  auto current = names.lookup(root.value(), "notes.md");
  if (!current.ok()) return 1;
  std::printf("\ncurrent notes.md:\n---\n%s---\n",
              to_string(files.read_whole(current.value()).value()).c_str());
  return 0;
}
